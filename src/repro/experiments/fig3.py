"""Figure 3 — recall as a function of the number of queried peers.

Builds the paper's two testbeds over the synthetic GOV-like corpus
(Section 8.1) and micro-averages relative recall over the query workload
for each routing method (Section 8.2):

- **left chart**: ``C(6, 3) = 20`` peers from all 3-subsets of 6
  fragments;
- **right chart**: 50 peers from a sliding window of 10 fragments,
  offset 2, over 100 fragments.

Methods compared (the paper's legend): CORI, and IQN with MIPs-32,
BF-1024, MIPs-64, BF-2048 synopses — "The shorter synopsis length was
1024 bits or equivalently 32 min-wise permutations; the longer one was
2048 bits or 64 min-wise permutations."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Sequence

from ..core.iqn import IQNRouter
from ..datasets.corpus import GovCorpusConfig, build_gov_corpus
from ..datasets.partition import (
    combination_collections,
    corpora_from_doc_id_sets,
    fragment_corpus,
    sliding_window_collections,
)
from ..datasets.queries import Query, make_workload
from ..ir.index import InvertedIndex
from ..ir.metrics import micro_average
from ..minerva.engine import MinervaEngine
from ..parallel import ExperimentRunner, SetupHandle, current_setup
from ..routing.base import PeerSelector
from ..routing.cori import CoriSelector
from ..synopses.factory import SynopsisSpec

__all__ = [
    "FIG3_SPEC_LABELS",
    "RecallCurve",
    "Testbed",
    "build_combination_testbed",
    "build_sliding_window_testbed",
    "cached_testbed",
    "default_selectors",
    "recall_query_task",
    "run_recall_experiment",
]

#: The synopsis configurations of Figure 3's legend.
FIG3_SPEC_LABELS = ("mips-32", "bf-1024", "mips-64", "bf-2048")


@dataclass(frozen=True)
class RecallCurve:
    """Micro-averaged recall per number of queried peers for one method.

    ``recall_at[j]`` is the recall with the initiator's local result plus
    ``j`` remote peers; index 0 is the local-only baseline.
    """

    method: str
    recall_at: tuple[float, ...]

    def at(self, num_peers: int) -> float:
        return self.recall_at[num_peers]


@dataclass
class Testbed:
    """One prepared experimental setup: engines keyed by synopsis label.

    Every synopsis configuration gets its *own* engine over the same
    collections, because Posts carry configuration-specific synopses;
    CORI runs on the first engine (its decisions ignore synopses).
    """

    config: GovCorpusConfig
    engines: dict[str, MinervaEngine]
    queries: list[Query]
    num_peers: int
    description: str = ""

    def engine_for(self, label: str) -> MinervaEngine:
        try:
            return self.engines[label]
        except KeyError:
            raise KeyError(
                f"testbed has no engine for spec {label!r}; "
                f"available: {sorted(self.engines)}"
            ) from None


def _build_testbed(
    config: GovCorpusConfig,
    collection_builder: Callable,
    *,
    spec_labels: Sequence[str],
    num_queries: int,
    query_seed: int,
    query_pool_size: int,
    query_pool_offset: int,
    description: str,
) -> Testbed:
    corpus = build_gov_corpus(config)
    doc_id_sets = collection_builder(corpus)
    collections = corpora_from_doc_id_sets(corpus, doc_id_sets)
    queries = make_workload(
        config,
        num_queries=num_queries,
        seed=query_seed,
        pool_size=query_pool_size,
        pool_offset=query_pool_offset,
    )
    needed_terms = {term for query in queries for term in query.terms}
    # Index construction dominates setup cost and is identical for every
    # synopsis configuration, so build the indexes once and share them.
    shared_indexes = [InvertedIndex(collection) for collection in collections]
    shared_reference: InvertedIndex | None = None
    engines = {}
    for label in spec_labels:
        engine = MinervaEngine(
            collections,
            spec=SynopsisSpec.parse(label),
            indexes=shared_indexes,
            reference_index=shared_reference,
        )
        engine.publish(needed_terms)
        shared_reference = engine.reference_index
        engines[label] = engine
    return Testbed(
        config=config,
        engines=engines,
        queries=queries,
        num_peers=len(collections),
        description=description,
    )


def build_combination_testbed(
    config: GovCorpusConfig | None = None,
    *,
    num_fragments: int = 6,
    subset_size: int = 3,
    spec_labels: Sequence[str] = FIG3_SPEC_LABELS,
    num_queries: int = 10,
    query_seed: int = 7,
    query_pool_size: int = 32,
    query_pool_offset: int = 8,
) -> Testbed:
    """The Figure 3 (left) setup: ``C(f, s)`` fragment-subset peers."""
    config = config or GovCorpusConfig()

    def build(corpus):
        fragments = fragment_corpus(corpus, num_fragments)
        return combination_collections(fragments, subset_size)

    return _build_testbed(
        config,
        build,
        spec_labels=spec_labels,
        num_queries=num_queries,
        query_seed=query_seed,
        query_pool_size=query_pool_size,
        query_pool_offset=query_pool_offset,
        description=f"C({num_fragments},{subset_size}) combination placement",
    )


def build_sliding_window_testbed(
    config: GovCorpusConfig | None = None,
    *,
    num_fragments: int = 100,
    window: int = 10,
    offset: int = 2,
    spec_labels: Sequence[str] = FIG3_SPEC_LABELS,
    num_queries: int = 10,
    query_seed: int = 7,
    query_pool_size: int = 32,
    query_pool_offset: int = 8,
) -> Testbed:
    """The Figure 3 (right) setup: sliding-window placement (50 peers)."""
    config = config or GovCorpusConfig()

    def build(corpus):
        fragments = fragment_corpus(corpus, num_fragments)
        return sliding_window_collections(fragments, window, offset)

    return _build_testbed(
        config,
        build,
        spec_labels=spec_labels,
        num_queries=num_queries,
        query_seed=query_seed,
        query_pool_size=query_pool_size,
        query_pool_offset=query_pool_offset,
        description=f"sliding window r={window} offset={offset} placement",
    )


def cached_testbed(
    runner: ExperimentRunner,
    placement: str,
    config: GovCorpusConfig | None = None,
    **params: Any,
) -> SetupHandle:
    """Build (or load from the runner's cache) one Figure 3 testbed.

    ``placement`` is ``"combination"`` or ``"sliding-window"``; ``params``
    are forwarded to the corresponding builder *and* fingerprinted, so a
    testbed is rebuilt exactly when an ingredient — corpus config,
    placement, spec labels, workload parameters — changes.  Pass
    parameters explicitly and consistently: the fingerprint hashes what
    you pass, not the builders' defaults.
    """
    builders: dict[str, Callable[..., Testbed]] = {
        "combination": build_combination_testbed,
        "sliding-window": build_sliding_window_testbed,
    }
    try:
        build = builders[placement]
    except KeyError:
        raise ValueError(
            f"unknown placement {placement!r}; choose from {sorted(builders)}"
        ) from None
    config = config or GovCorpusConfig()
    parts = {"placement": placement, "config": config, "params": params}
    return runner.setup(
        "fig3-testbed", parts, lambda: build(config, **params)
    )


def default_selectors(
    spec_labels: Sequence[str] = FIG3_SPEC_LABELS,
) -> dict[str, tuple[str, PeerSelector]]:
    """The paper's Figure 3 method set.

    Returns ``{method_name: (spec_label, selector)}`` — each IQN variant
    must run on the engine whose Posts carry its synopsis type.
    """
    methods: dict[str, tuple[str, PeerSelector]] = {
        "CORI": (spec_labels[0], CoriSelector()),
    }
    for label in spec_labels:
        display = SynopsisSpec.parse(label).label
        methods[f"IQN {display}"] = (label, IQNRouter())
    return methods


def recall_query_task(task: dict, seed: int) -> tuple[float, ...]:
    """Worker entrypoint: one routed query on the attached testbed."""
    del seed  # routing and execution are fully deterministic
    testbed = current_setup()
    engine = testbed.engine_for(task["spec_label"])
    outcome = engine.run_query(
        testbed.queries[task["query_index"]],
        task["selector"],
        max_peers=task["max_peers"],
        k=task["k"],
        peer_k=task["peer_k"],
        conjunctive=task["conjunctive"],
    )
    return outcome.recall_at


def run_recall_experiment(
    testbed: Testbed,
    *,
    max_peers: int,
    k: int = 100,
    peer_k: int | None = 30,
    conjunctive: bool = False,
    methods: dict[str, tuple[str, PeerSelector]] | None = None,
    runner: ExperimentRunner | None = None,
    testbed_handle: SetupHandle | None = None,
) -> list[RecallCurve]:
    """Micro-averaged recall curves for every method over the workload.

    Defaults model the paper's regime: each queried peer ships its local
    top-30 while recall is measured against the centralized top-100, so
    reaching high recall *requires* complementary peers.

    Every (method, query) pair is an independent task on ``runner``'s
    pool; results are bit-identical at any worker count (``runner=None``
    runs the same tasks serially in process).  When the testbed came from
    :func:`cached_testbed`, pass its ``testbed_handle`` so pooled workers
    attach to the existing artifact instead of re-pickling the testbed.
    """
    if methods is None:
        methods = default_selectors(tuple(testbed.engines))
    if runner is None:
        runner = ExperimentRunner(workers=1)
    tasks = [
        {
            "spec_label": spec_label,
            "selector": selector,
            "query_index": query_index,
            "max_peers": max_peers,
            "k": k,
            "peer_k": peer_k,
            "conjunctive": conjunctive,
        }
        for (spec_label, selector) in methods.values()
        for query_index in range(len(testbed.queries))
    ]
    handle = testbed_handle or runner.attach("fig3-testbed", testbed)
    recall_rows = runner.map(recall_query_task, tasks, setup=handle)
    curves = []
    num_queries = len(testbed.queries)
    for method_index, method_name in enumerate(methods):
        per_query = recall_rows[
            method_index * num_queries : (method_index + 1) * num_queries
        ]
        depth = min(len(r) for r in per_query)
        averaged = tuple(
            micro_average([r[j] for r in per_query]) for j in range(depth)
        )
        curves.append(RecallCurve(method=method_name, recall_at=averaged))
    return curves
