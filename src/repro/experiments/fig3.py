"""Figure 3 — recall as a function of the number of queried peers.

Builds the paper's two testbeds over the synthetic GOV-like corpus
(Section 8.1) and micro-averages relative recall over the query workload
for each routing method (Section 8.2):

- **left chart**: ``C(6, 3) = 20`` peers from all 3-subsets of 6
  fragments;
- **right chart**: 50 peers from a sliding window of 10 fragments,
  offset 2, over 100 fragments.

Methods compared (the paper's legend): CORI, and IQN with MIPs-32,
BF-1024, MIPs-64, BF-2048 synopses — "The shorter synopsis length was
1024 bits or equivalently 32 min-wise permutations; the longer one was
2048 bits or 64 min-wise permutations."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from ..core.iqn import IQNRouter
from ..datasets.corpus import GovCorpusConfig, build_gov_corpus
from ..datasets.partition import (
    combination_collections,
    corpora_from_doc_id_sets,
    fragment_corpus,
    sliding_window_collections,
)
from ..datasets.queries import Query, make_workload
from ..ir.index import InvertedIndex
from ..ir.metrics import micro_average
from ..minerva.engine import MinervaEngine
from ..routing.base import PeerSelector
from ..routing.cori import CoriSelector
from ..synopses.factory import SynopsisSpec

__all__ = [
    "FIG3_SPEC_LABELS",
    "RecallCurve",
    "Testbed",
    "build_combination_testbed",
    "build_sliding_window_testbed",
    "default_selectors",
    "run_recall_experiment",
]

#: The synopsis configurations of Figure 3's legend.
FIG3_SPEC_LABELS = ("mips-32", "bf-1024", "mips-64", "bf-2048")


@dataclass(frozen=True)
class RecallCurve:
    """Micro-averaged recall per number of queried peers for one method.

    ``recall_at[j]`` is the recall with the initiator's local result plus
    ``j`` remote peers; index 0 is the local-only baseline.
    """

    method: str
    recall_at: tuple[float, ...]

    def at(self, num_peers: int) -> float:
        return self.recall_at[num_peers]


@dataclass
class Testbed:
    """One prepared experimental setup: engines keyed by synopsis label.

    Every synopsis configuration gets its *own* engine over the same
    collections, because Posts carry configuration-specific synopses;
    CORI runs on the first engine (its decisions ignore synopses).
    """

    config: GovCorpusConfig
    engines: dict[str, MinervaEngine]
    queries: list[Query]
    num_peers: int
    description: str = ""

    def engine_for(self, label: str) -> MinervaEngine:
        try:
            return self.engines[label]
        except KeyError:
            raise KeyError(
                f"testbed has no engine for spec {label!r}; "
                f"available: {sorted(self.engines)}"
            ) from None


def _build_testbed(
    config: GovCorpusConfig,
    collection_builder: Callable,
    *,
    spec_labels: Sequence[str],
    num_queries: int,
    query_seed: int,
    query_pool_size: int,
    query_pool_offset: int,
    description: str,
) -> Testbed:
    corpus = build_gov_corpus(config)
    doc_id_sets = collection_builder(corpus)
    collections = corpora_from_doc_id_sets(corpus, doc_id_sets)
    queries = make_workload(
        config,
        num_queries=num_queries,
        seed=query_seed,
        pool_size=query_pool_size,
        pool_offset=query_pool_offset,
    )
    needed_terms = {term for query in queries for term in query.terms}
    # Index construction dominates setup cost and is identical for every
    # synopsis configuration, so build the indexes once and share them.
    shared_indexes = [InvertedIndex(collection) for collection in collections]
    shared_reference: InvertedIndex | None = None
    engines = {}
    for label in spec_labels:
        engine = MinervaEngine(
            collections,
            spec=SynopsisSpec.parse(label),
            indexes=shared_indexes,
            reference_index=shared_reference,
        )
        engine.publish(needed_terms)
        shared_reference = engine.reference_index
        engines[label] = engine
    return Testbed(
        config=config,
        engines=engines,
        queries=queries,
        num_peers=len(collections),
        description=description,
    )


def build_combination_testbed(
    config: GovCorpusConfig | None = None,
    *,
    num_fragments: int = 6,
    subset_size: int = 3,
    spec_labels: Sequence[str] = FIG3_SPEC_LABELS,
    num_queries: int = 10,
    query_seed: int = 7,
    query_pool_size: int = 32,
    query_pool_offset: int = 8,
) -> Testbed:
    """The Figure 3 (left) setup: ``C(f, s)`` fragment-subset peers."""
    config = config or GovCorpusConfig()

    def build(corpus):
        fragments = fragment_corpus(corpus, num_fragments)
        return combination_collections(fragments, subset_size)

    return _build_testbed(
        config,
        build,
        spec_labels=spec_labels,
        num_queries=num_queries,
        query_seed=query_seed,
        query_pool_size=query_pool_size,
        query_pool_offset=query_pool_offset,
        description=f"C({num_fragments},{subset_size}) combination placement",
    )


def build_sliding_window_testbed(
    config: GovCorpusConfig | None = None,
    *,
    num_fragments: int = 100,
    window: int = 10,
    offset: int = 2,
    spec_labels: Sequence[str] = FIG3_SPEC_LABELS,
    num_queries: int = 10,
    query_seed: int = 7,
    query_pool_size: int = 32,
    query_pool_offset: int = 8,
) -> Testbed:
    """The Figure 3 (right) setup: sliding-window placement (50 peers)."""
    config = config or GovCorpusConfig()

    def build(corpus):
        fragments = fragment_corpus(corpus, num_fragments)
        return sliding_window_collections(fragments, window, offset)

    return _build_testbed(
        config,
        build,
        spec_labels=spec_labels,
        num_queries=num_queries,
        query_seed=query_seed,
        query_pool_size=query_pool_size,
        query_pool_offset=query_pool_offset,
        description=f"sliding window r={window} offset={offset} placement",
    )


def default_selectors(
    spec_labels: Sequence[str] = FIG3_SPEC_LABELS,
) -> dict[str, tuple[str, PeerSelector]]:
    """The paper's Figure 3 method set.

    Returns ``{method_name: (spec_label, selector)}`` — each IQN variant
    must run on the engine whose Posts carry its synopsis type.
    """
    methods: dict[str, tuple[str, PeerSelector]] = {
        "CORI": (spec_labels[0], CoriSelector()),
    }
    for label in spec_labels:
        display = SynopsisSpec.parse(label).label
        methods[f"IQN {display}"] = (label, IQNRouter())
    return methods


def run_recall_experiment(
    testbed: Testbed,
    *,
    max_peers: int,
    k: int = 100,
    peer_k: int | None = 30,
    conjunctive: bool = False,
    methods: dict[str, tuple[str, PeerSelector]] | None = None,
) -> list[RecallCurve]:
    """Micro-averaged recall curves for every method over the workload.

    Defaults model the paper's regime: each queried peer ships its local
    top-30 while recall is measured against the centralized top-100, so
    reaching high recall *requires* complementary peers.
    """
    if methods is None:
        methods = default_selectors(tuple(testbed.engines))
    curves = []
    for method_name, (spec_label, selector) in methods.items():
        engine = testbed.engine_for(spec_label)
        per_query = [
            engine.run_query(
                query,
                selector,
                max_peers=max_peers,
                k=k,
                peer_k=peer_k,
                conjunctive=conjunctive,
            ).recall_at
            for query in testbed.queries
        ]
        depth = min(len(r) for r in per_query)
        averaged = tuple(
            micro_average([r[j] for r in per_query]) for j in range(depth)
        )
        curves.append(RecallCurve(method=method_name, recall_at=averaged))
    return curves
