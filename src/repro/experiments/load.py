"""Per-peer load distribution under a query workload.

Section 8.2's closing argument: IQN "is a highly effective means of
gaining efficiency, reducing the network and per-peer load, and thus
improving throughput and response times" — because response times are
superlinear in utilization, the *distribution* of query forwards across
peers matters, not just their count.

This harness drives a workload from many initiators through an engine
and reports, per routing method:

- forwards per peer (mean / max / Gini-style imbalance);
- total forwards (identical across methods when max_peers is fixed —
  the interesting signal is concentration);
- the estimated response time of the *hottest* peer under the M/M/1
  curve, which turns concentration into the latency penalty the paper
  alludes to.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Sequence

from ..datasets.queries import Query
from ..minerva.engine import MinervaEngine
from ..net.latency import mm1_response_time
from ..parallel import ExperimentRunner, SetupHandle, current_setup
from ..routing.base import PeerSelector

__all__ = ["LoadReport", "load_query_task", "measure_load"]


@dataclass(frozen=True)
class LoadReport:
    """Load distribution for one routing method over a workload."""

    method: str
    forwards_per_peer: dict[str, int]
    total_forwards: int

    @property
    def busiest_peer_share(self) -> float:
        """Fraction of all forwards absorbed by the hottest peer."""
        if self.total_forwards == 0:
            return 0.0
        return max(self.forwards_per_peer.values()) / self.total_forwards

    @property
    def peers_touched(self) -> int:
        return len(self.forwards_per_peer)

    def imbalance(self) -> float:
        """Max-over-mean load ratio (1.0 = perfectly even).

        Computed over the peers that received any forward; idle peers
        are a separate signal (``peers_touched``).
        """
        if not self.forwards_per_peer:
            return 1.0
        loads = list(self.forwards_per_peer.values())
        mean = sum(loads) / len(loads)
        return max(loads) / mean if mean else 1.0

    def hottest_response_time_ms(
        self, *, service_time_ms: float = 50.0, capacity_per_peer: int = 100
    ) -> float:
        """M/M/1 response time at the hottest peer.

        ``capacity_per_peer`` is how many forwards a peer could serve in
        the workload window at full utilization; the hottest peer's
        utilization is its forward count over that capacity (clamped
        below 1 to keep the queue stable).
        """
        if not self.forwards_per_peer:
            return service_time_ms
        utilization = min(
            0.99, max(self.forwards_per_peer.values()) / capacity_per_peer
        )
        return mm1_response_time(service_time_ms, utilization)


def load_query_task(task: dict, seed: int) -> tuple[str, ...]:
    """Worker entrypoint: one (query, initiator) run on the attached
    engine, returning the selected peer ids to tally."""
    del seed  # routing is fully deterministic
    engine = current_setup()
    outcome = engine.run_query(
        task["query"],
        task["selector"],
        initiator_id=task["initiator_id"],
        max_peers=task["max_peers"],
        k=task["k"],
        peer_k=task["peer_k"],
    )
    return outcome.selected


def measure_load(
    engine: MinervaEngine,
    queries: Sequence[Query],
    methods: dict[str, PeerSelector],
    *,
    max_peers: int,
    k: int = 100,
    peer_k: int | None = 30,
    initiators_per_query: int = 5,
    runner: ExperimentRunner | None = None,
    engine_handle: SetupHandle | None = None,
) -> list[LoadReport]:
    """Run every query from several initiators and tally the forwards.

    Different initiators have different local seeds, so even a
    deterministic router spreads load across the network the way a real
    multi-user deployment would.  Each (method, query, initiator) triple
    is an independent pool task; forwards are tallied in task order, so
    the reports are identical at any worker count.
    """
    if initiators_per_query <= 0:
        raise ValueError(
            f"initiators_per_query must be positive, got {initiators_per_query}"
        )
    if runner is None:
        runner = ExperimentRunner(workers=1)
    peer_ids = sorted(engine.peers)
    tasks = []
    task_methods = []
    for method_name, selector in methods.items():
        for query in queries:
            for offset in range(initiators_per_query):
                initiator = peer_ids[
                    (query.query_id + offset * 7) % len(peer_ids)
                ]
                tasks.append(
                    {
                        "query": query,
                        "selector": selector,
                        "initiator_id": initiator,
                        "max_peers": max_peers,
                        "k": k,
                        "peer_k": peer_k,
                    }
                )
                task_methods.append(method_name)
    handle = engine_handle or runner.attach("load-engine", engine)
    selections = runner.map(load_query_task, tasks, setup=handle)
    forwards_by_method: dict[str, Counter[str]] = {
        method_name: Counter() for method_name in methods
    }
    # Pooled workers return their own copies of the peer-id strings;
    # intern them back to the engine's canonical ids so the aggregated
    # reports have the same object graph (and serialize to the same
    # bytes) at any worker count.
    canonical_ids = {peer_id: peer_id for peer_id in peer_ids}
    for method_name, selected in zip(task_methods, selections):
        forwards_by_method[method_name].update(
            canonical_ids[peer_id] for peer_id in selected
        )
    return [
        LoadReport(
            method=method_name,
            forwards_per_peer=dict(forwards),
            total_forwards=sum(forwards.values()),
        )
        for method_name, forwards in forwards_by_method.items()
    ]
