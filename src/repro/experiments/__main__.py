"""Command-line entry point to regenerate the paper's figures.

Usage::

    python -m repro.experiments fig2-left
    python -m repro.experiments fig2-right
    python -m repro.experiments fig3-left   [--quick]
    python -m repro.experiments fig3-right  [--quick]
    python -m repro.experiments matrix
    python -m repro.experiments load        [--quick]
    python -m repro.experiments netload     [--quick]
    python -m repro.experiments reposting   [--quick]
    python -m repro.experiments churn       [--quick]
    python -m repro.experiments serve       [--quick]

``--quick`` shrinks the corpus/workload so a figure renders in seconds
(for smoke-testing; the bench harness runs the calibrated full scale).

``--workers N`` fans the experiment's independent tasks out over N
worker processes; results are bit-identical at any worker count.
``--cache-dir DIR`` persists built setups (corpus + indexes + synopses
+ directory) content-addressed under DIR, so regenerating a figure —
or a different figure over the same testbed — skips the rebuild;
``--no-cache`` disables reuse without disabling pooling.
"""

from __future__ import annotations

import argparse
import dataclasses
import sys

from ..parallel import ExperimentRunner
from .config import (
    FIG3_CORPUS,
    FIG3_NUM_QUERIES,
    FIG3_PEER_K,
    FIG3_QUERY_POOL,
    FIG3_QUERY_POOL_OFFSET,
    FIG3_REFERENCE_K,
    SMALL_CORPUS,
)
from .fig2 import error_vs_collection_size, error_vs_overlap
from .fig3 import cached_testbed, run_recall_experiment
from .report import (
    format_capability_matrix,
    format_error_points,
    format_recall_curves,
)

__all__ = ["TARGETS", "run_target", "main"]

TARGETS = (
    "fig2-left",
    "fig2-right",
    "fig3-left",
    "fig3-right",
    "matrix",
    "load",
    "netload",
    "reposting",
    "churn",
    "serve",
    "hierarchy",
)


def _fig3_setup(quick: bool):
    if quick:
        config = dataclasses.replace(SMALL_CORPUS, topic_smear=1.0)
        return config, 4, 12, 0, 30, 10
    return (
        FIG3_CORPUS,
        FIG3_NUM_QUERIES,
        FIG3_QUERY_POOL,
        FIG3_QUERY_POOL_OFFSET,
        FIG3_REFERENCE_K,
        FIG3_PEER_K,
    )


def run_target(
    target: str,
    *,
    quick: bool = False,
    runs: int = 30,
    runner: ExperimentRunner | None = None,
) -> str:
    """Regenerate one figure and return its text rendering."""
    if runner is None:
        runner = ExperimentRunner(workers=1)
    if target == "fig2-left":
        points = error_vs_collection_size(
            runs=4 if quick else runs, runner=runner
        )
        return format_error_points(points, x_name="docs/collection")
    if target == "fig2-right":
        points = error_vs_overlap(runs=4 if quick else runs, runner=runner)
        return format_error_points(points, x_name="mutual overlap")
    if target == "matrix":
        return format_capability_matrix()
    if target == "hierarchy":
        from .hierarchy import hierarchy_sweep
        from .report import format_table

        points = hierarchy_sweep(
            (300, 1_000) if quick else (1_000, 10_000),
            num_queries=6 if quick else 20,
            spec_label="bf-512" if quick else "bf-2048",
            seed=11,
            runner=runner,
        )
        return format_table(
            [
                "peers",
                "topology",
                "recall",
                "msgs/q",
                "kbits/q",
                "hops/q",
                "super fetches/q",
                "scope",
            ],
            [
                [
                    p.num_peers,
                    p.topology,
                    round(p.mean_recall, 3),
                    round(p.mean_messages, 1),
                    round(p.mean_kbits, 1),
                    round(p.mean_dht_hops, 1),
                    round(p.mean_super_fetches, 1),
                    round(p.mean_scope, 1),
                ]
                for p in points
            ],
        )
    config, num_queries, pool, offset, k, peer_k = _fig3_setup(quick)
    if target == "reposting":
        from .report import format_table
        from .reposting import reposting_experiment

        rows = reposting_experiment(
            config,
            rounds=2 if quick else 4,
            num_peers=6 if quick else 12,
            num_queries=min(num_queries, 4),
            query_pool_size=pool if pool > 12 else 16,
            max_peers=3,
            k=k,
            peer_k=peer_k,
        )
        return format_table(
            ["policy", "round", "cumulative post bits", "mean recall"],
            [
                [r.policy, r.round_index, r.cumulative_post_bits, r.mean_recall]
                for r in rows
            ],
        )
    if target == "load":
        from ..core.iqn import IQNRouter
        from ..routing.cori import CoriSelector
        from .load import measure_load
        from .report import format_table

        handle = cached_testbed(
            runner,
            "sliding-window",
            config,
            num_queries=num_queries,
            query_pool_size=pool,
            query_pool_offset=offset,
            spec_labels=("mips-64",),
        )
        testbed = handle.value
        reports = measure_load(
            testbed.engines["mips-64"],
            testbed.queries,
            {"CORI": CoriSelector(), "IQN": IQNRouter()},
            max_peers=5,
            k=k,
            peer_k=peer_k,
            runner=runner,
        )
        return format_table(
            ["method", "forwards", "peers touched", "busiest share", "max/mean"],
            [
                [
                    r.method,
                    r.total_forwards,
                    r.peers_touched,
                    r.busiest_peer_share,
                    r.imbalance(),
                ]
                for r in reports
            ],
        )
    if target == "netload":
        from ..core.iqn import IQNRouter
        from .netload import simnet_load_sweep
        from .report import format_table

        handle = cached_testbed(
            runner,
            "combination",
            config,
            num_queries=num_queries,
            query_pool_size=pool,
            query_pool_offset=offset,
            spec_labels=("mips-64",),
        )
        testbed = handle.value
        points = simnet_load_sweep(
            testbed.engines["mips-64"],
            testbed.queries,
            IQNRouter,
            offered_qps=(2.0, 20.0) if quick else (2.0, 10.0, 50.0, 200.0),
            loss_rates=(0.0, 0.1),
            seed=17,
            max_peers=5,
            k=k,
            peer_k=peer_k,
            runner=runner,
        )
        return format_table(
            ["loss", "qps", "mean ms", "p95 ms", "recall", "retries"],
            [
                [
                    p.loss_rate,
                    p.offered_qps,
                    p.mean_latency_ms,
                    p.p95_latency_ms,
                    p.mean_recall,
                    p.forward_retries,
                ]
                for p in points
            ],
        )
    if target == "churn":
        from ..core.iqn import IQNRouter
        from .churn import churn_sweep
        from .report import format_table

        handle = cached_testbed(
            runner,
            "combination",
            config,
            num_queries=num_queries,
            query_pool_size=pool,
            query_pool_offset=offset,
            spec_labels=("mips-64",),
        )
        testbed = handle.value
        horizon_ms = 30_000.0 if quick else 60_000.0
        points = churn_sweep(
            testbed.engines["mips-64"],
            testbed.queries,
            IQNRouter,
            churn_rates=(1.0, 4.0) if quick else (0.5, 1.0, 2.0, 4.0),
            repost_intervals_ms=(
                (5_000.0, 15_000.0)
                if quick
                else (5_000.0, 15_000.0, 30_000.0)
            ),
            horizon_ms=horizon_ms,
            # Spread arrivals across the horizon so queries genuinely
            # race the membership events instead of finishing before
            # the first failure.
            interarrival_ms=horizon_ms / (len(testbed.queries) + 1),
            seed=23,
            max_peers=5,
            k=k,
            peer_k=peer_k,
            runner=runner,
        )
        return format_table(
            [
                "churn/min",
                "repost ms",
                "recall",
                "p95 ms",
                "query msgs",
                "maint msgs",
                "stale",
                "rescued",
            ],
            [
                [
                    p.churn_rate,
                    p.repost_interval_ms,
                    p.mean_recall,
                    p.p95_latency_ms,
                    p.query_messages,
                    p.maintenance_messages,
                    p.stale_routes,
                    p.fallback_successes,
                ]
                for p in points
            ],
        )
    if target == "serve":
        from ..core.iqn import IQNRouter
        from .report import format_table
        from .serve import serve_sweep

        handle = cached_testbed(
            runner,
            "combination",
            config,
            num_queries=num_queries,
            query_pool_size=pool,
            query_pool_offset=offset,
            spec_labels=("mips-64",),
        )
        testbed = handle.value
        points = serve_sweep(
            testbed.engines["mips-64"],
            testbed.queries,
            IQNRouter,
            offered_qps=(5.0, 20.0) if quick else (2.0, 10.0, 50.0),
            zipf_skews=(0.0, 1.1),
            churn_rates=(0.0,) if quick else (0.0, 2.0),
            num_events=24 if quick else 64,
            seed=29,
            max_peers=5,
            k=k,
            peer_k=peer_k,
            runner=runner,
        )
        return format_table(
            [
                "qps",
                "zipf",
                "churn/min",
                "hit rate",
                "bits/q",
                "full bits/q",
                "p95 ms",
                "full p95 ms",
                "identical",
            ],
            [
                [
                    p.qps,
                    p.zipf_s,
                    p.churn_rate,
                    round(p.plan_hit_rate, 3),
                    round(p.served_bits_per_query, 1),
                    round(p.full_bits_per_query, 1),
                    round(p.served_p95_ms, 2),
                    round(p.full_p95_ms, 2),
                    p.bit_identical if p.identity_checked else "n/a",
                ]
                for p in points
            ],
        )
    if target == "fig3-left":
        handle = cached_testbed(
            runner,
            "combination",
            config,
            num_queries=num_queries,
            query_pool_size=pool,
            query_pool_offset=offset,
        )
        curves = run_recall_experiment(
            handle.value,
            max_peers=7,
            k=k,
            peer_k=peer_k,
            runner=runner,
            testbed_handle=handle,
        )
        return format_recall_curves(curves)
    if target == "fig3-right":
        handle = cached_testbed(
            runner,
            "sliding-window",
            config,
            num_queries=num_queries,
            query_pool_size=pool,
            query_pool_offset=offset,
        )
        curves = run_recall_experiment(
            handle.value,
            max_peers=10,
            k=k,
            peer_k=peer_k,
            runner=runner,
            testbed_handle=handle,
        )
        return format_recall_curves(curves)
    raise ValueError(f"unknown target {target!r}; choose from {TARGETS}")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate figures of the IQN routing paper.",
    )
    parser.add_argument("target", choices=TARGETS)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small corpus / few runs (seconds instead of minutes)",
    )
    parser.add_argument(
        "--runs",
        type=int,
        default=30,
        help="runs per Figure 2 data point (default 30)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes for independent tasks (default 1 = serial; "
        "results are identical at any worker count)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="persist built setups content-addressed under this directory "
        "and reuse them across runs",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="never reuse cached setups (pooling still works)",
    )
    parser.add_argument(
        "--adaptive-serial",
        type=float,
        default=None,
        metavar="SECONDS",
        help="with --workers > 1, probe the first task in-process and "
        "keep the whole grid serial when it projects to finish under "
        "this many seconds (pool startup would dominate); results are "
        "identical either way",
    )
    args = parser.parse_args(argv)
    runner = ExperimentRunner(
        workers=args.workers,
        cache_dir=args.cache_dir,
        use_cache=args.cache_dir is not None and not args.no_cache,
        adaptive_serial_s=args.adaptive_serial,
    )
    print(run_target(args.target, quick=args.quick, runs=args.runs, runner=runner))
    return 0


if __name__ == "__main__":
    sys.exit(main())
