"""Command-line entry point to regenerate the paper's figures.

Usage::

    python -m repro.experiments fig2-left
    python -m repro.experiments fig2-right
    python -m repro.experiments fig3-left   [--quick]
    python -m repro.experiments fig3-right  [--quick]
    python -m repro.experiments matrix
    python -m repro.experiments load        [--quick]
    python -m repro.experiments reposting   [--quick]

``--quick`` shrinks the corpus/workload so a figure renders in seconds
(for smoke-testing; the bench harness runs the calibrated full scale).
"""

from __future__ import annotations

import argparse
import dataclasses
import sys

from .config import (
    FIG3_CORPUS,
    FIG3_NUM_QUERIES,
    FIG3_PEER_K,
    FIG3_QUERY_POOL,
    FIG3_QUERY_POOL_OFFSET,
    FIG3_REFERENCE_K,
    SMALL_CORPUS,
)
from .fig2 import error_vs_collection_size, error_vs_overlap
from .fig3 import (
    build_combination_testbed,
    build_sliding_window_testbed,
    run_recall_experiment,
)
from .report import (
    format_capability_matrix,
    format_error_points,
    format_recall_curves,
)

__all__ = ["TARGETS", "run_target", "main"]

TARGETS = (
    "fig2-left",
    "fig2-right",
    "fig3-left",
    "fig3-right",
    "matrix",
    "load",
    "reposting",
)


def _fig3_setup(quick: bool):
    if quick:
        config = dataclasses.replace(SMALL_CORPUS, topic_smear=1.0)
        return config, 4, 12, 0, 30, 10
    return (
        FIG3_CORPUS,
        FIG3_NUM_QUERIES,
        FIG3_QUERY_POOL,
        FIG3_QUERY_POOL_OFFSET,
        FIG3_REFERENCE_K,
        FIG3_PEER_K,
    )


def run_target(target: str, *, quick: bool = False, runs: int = 30) -> str:
    """Regenerate one figure and return its text rendering."""
    if target == "fig2-left":
        points = error_vs_collection_size(runs=4 if quick else runs)
        return format_error_points(points, x_name="docs/collection")
    if target == "fig2-right":
        points = error_vs_overlap(runs=4 if quick else runs)
        return format_error_points(points, x_name="mutual overlap")
    if target == "matrix":
        return format_capability_matrix()
    config, num_queries, pool, offset, k, peer_k = _fig3_setup(quick)
    if target == "reposting":
        from .report import format_table
        from .reposting import reposting_experiment

        rows = reposting_experiment(
            config,
            rounds=2 if quick else 4,
            num_peers=6 if quick else 12,
            num_queries=min(num_queries, 4),
            query_pool_size=pool if pool > 12 else 16,
            max_peers=3,
            k=k,
            peer_k=peer_k,
        )
        return format_table(
            ["policy", "round", "cumulative post bits", "mean recall"],
            [
                [r.policy, r.round_index, r.cumulative_post_bits, r.mean_recall]
                for r in rows
            ],
        )
    if target == "load":
        from ..core.iqn import IQNRouter
        from ..routing.cori import CoriSelector
        from .load import measure_load
        from .report import format_table

        testbed = build_sliding_window_testbed(
            config,
            num_queries=num_queries,
            query_pool_size=pool,
            query_pool_offset=offset,
            spec_labels=("mips-64",),
        )
        reports = measure_load(
            testbed.engines["mips-64"],
            testbed.queries,
            {"CORI": CoriSelector(), "IQN": IQNRouter()},
            max_peers=5,
            k=k,
            peer_k=peer_k,
        )
        return format_table(
            ["method", "forwards", "peers touched", "busiest share", "max/mean"],
            [
                [
                    r.method,
                    r.total_forwards,
                    r.peers_touched,
                    r.busiest_peer_share,
                    r.imbalance(),
                ]
                for r in reports
            ],
        )
    if target == "fig3-left":
        testbed = build_combination_testbed(
            config,
            num_queries=num_queries,
            query_pool_size=pool,
            query_pool_offset=offset,
        )
        curves = run_recall_experiment(testbed, max_peers=7, k=k, peer_k=peer_k)
        return format_recall_curves(curves)
    if target == "fig3-right":
        testbed = build_sliding_window_testbed(
            config,
            num_queries=num_queries,
            query_pool_size=pool,
            query_pool_offset=offset,
        )
        curves = run_recall_experiment(testbed, max_peers=10, k=k, peer_k=peer_k)
        return format_recall_curves(curves)
    raise ValueError(f"unknown target {target!r}; choose from {TARGETS}")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate figures of the IQN routing paper.",
    )
    parser.add_argument("target", choices=TARGETS)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small corpus / few runs (seconds instead of minutes)",
    )
    parser.add_argument(
        "--runs",
        type=int,
        default=30,
        help="runs per Figure 2 data point (default 30)",
    )
    args = parser.parse_args(argv)
    print(run_target(args.target, quick=args.quick, runs=args.runs))
    return 0


if __name__ == "__main__":
    sys.exit(main())
