"""Flat vs. super-peer routing at directory scale.

The hierarchical routing tier (:mod:`repro.topology`) claims that
two-phase IQN — rank merged cluster synopses first, then only the
winning clusters' members — buys the same recall for fewer directory
messages once the network is large enough that per-term PeerLists dwarf
the cluster directory.  This experiment states that claim as a paired
measurement: for each network size, build one
:class:`~repro.datasets.scale.ScaledTestbed`, route the same topical
workload through :class:`~repro.topology.flat.FlatTopology` and
:class:`~repro.topology.superpeer.SuperPeerTopology` over the *same*
directory, and compare coverage recall against directory traffic.

Per-query accounting: directory-side costs (DHT hops, PeerList /
cluster / member fetches) are whatever the topology charged to the
directory's cost model; query execution is charged identically on both
sides — one ``query_forward`` plus one ``result_return`` per selected
peer — so the comparison isolates the routing tier.

Cells are independent pool tasks (one per network size; each builds its
testbed from seeds, routes both topologies, and returns the pair), so
results are bit-identical at any worker count.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..core.iqn import IQNRouter
from ..datasets.scale import ScaledTestbed, ScaledTestbedConfig
from ..minerva.engine import (
    QUERY_HEADER_BITS,
    QUERY_TERM_BITS,
    RESULT_ENTRY_BITS,
)
from ..net.cost import MessageKinds
from ..parallel import ExperimentRunner
from ..synopses.factory import SynopsisSpec
from ..topology.base import RoutingTopology
from ..topology.flat import FlatTopology
from ..topology.superpeer import SuperPeerTopology

__all__ = ["HierarchyPoint", "hierarchy_cell_task", "hierarchy_sweep"]

#: Result entries each queried peer is assumed to ship back; identical
#: on both sides, so it cancels out of the flat-vs-super comparison.
RESULT_K = 20


@dataclass(frozen=True)
class HierarchyPoint:
    """One (network size, topology) cell of the hierarchy sweep."""

    topology: str
    num_peers: int
    num_queries: int
    mean_recall: float
    mean_messages: float
    mean_kbits: float
    mean_dht_hops: float
    mean_super_fetches: float
    #: Candidate peers the selector actually ranked (scope), averaged;
    #: equals the full posted candidate set under the flat topology.
    mean_scope: float


def _route_workload(
    testbed: ScaledTestbed,
    topology: RoutingTopology,
    name: str,
    *,
    num_queries: int,
    max_peers: int,
) -> HierarchyPoint:
    """Route ``num_queries`` topical queries; average the per-query cost."""
    topology.bind(testbed)
    selector = IQNRouter()
    cost = testbed.directory.cost
    queries = testbed.queries(num_queries)
    recall_sum = messages = bits = hops = fetches = scope = 0.0
    for query in queries:
        view = testbed.local_view(query)
        before = cost.snapshot()
        plan = topology.route(
            query,
            selector,
            max_peers,
            requester=view.peer_id,
            initiator=view,
            conjunctive=False,
        )
        query_bits = QUERY_HEADER_BITS + QUERY_TERM_BITS * len(query.terms)
        for _ in plan.selected:
            cost.record(MessageKinds.QUERY_FORWARD, bits=query_bits)
            cost.record(
                MessageKinds.RESULT_RETURN, bits=RESULT_ENTRY_BITS * RESULT_K
            )
        delta = cost.snapshot() - before
        recall_sum += testbed.coverage_recall(plan.selected, query)
        messages += delta.total_messages
        bits += delta.total_bits
        hops += delta.messages(MessageKinds.DHT_HOP)
        fetches += plan.super_fetches
        if plan.scope_size is not None:
            scope += plan.scope_size
        else:
            candidates: set[str] = set()
            for term in dict.fromkeys(query.terms):
                stored = testbed.directory.stored_list(term)
                if stored is not None:
                    candidates.update(stored.posts)
            scope += len(candidates)
    n = len(queries)
    return HierarchyPoint(
        topology=name,
        num_peers=testbed.num_peers,
        num_queries=n,
        mean_recall=recall_sum / n,
        mean_messages=messages / n,
        mean_kbits=bits / n / 1000.0,
        mean_dht_hops=hops / n,
        mean_super_fetches=fetches / n,
        mean_scope=scope / n,
    )


def run_hierarchy_cell(
    config: ScaledTestbedConfig,
    *,
    spec_label: str = "bf-2048",
    num_queries: int = 20,
    max_peers: int = 10,
    num_clusters: int | None = None,
    cluster_budget: int | None = None,
) -> tuple[HierarchyPoint, HierarchyPoint]:
    """One network size: build the testbed once, route both topologies.

    Both passes see the exact same directory state — routing reads the
    directory but never mutates it.
    """
    spec = SynopsisSpec.parse(spec_label, seed=config.seed)
    testbed = ScaledTestbed(config, spec=spec)
    flat = _route_workload(
        testbed,
        FlatTopology(),
        "flat",
        num_queries=num_queries,
        max_peers=max_peers,
    )
    super_peer = _route_workload(
        testbed,
        SuperPeerTopology(
            num_clusters=num_clusters,
            cluster_budget=cluster_budget,
            seed=config.seed,
        ),
        "super-peer",
        num_queries=num_queries,
        max_peers=max_peers,
    )
    return flat, super_peer


def hierarchy_cell_task(
    task: dict, seed: int
) -> tuple[HierarchyPoint, HierarchyPoint]:
    """Worker entrypoint: one network-size cell of the hierarchy sweep.

    The testbed is rebuilt from seeds inside the worker (nothing at
    100k peers survives pickling cheaply), so the only payload is the
    cell's parameters.  The sweep's declared seed travels in the task;
    the runner-derived ``seed`` is unused so serial == pooled."""
    del seed
    config = ScaledTestbedConfig(
        num_peers=task["num_peers"],
        num_topics=task["num_topics"],
        topic_pool=task["topic_pool"],
        docs_per_term=tuple(task["docs_per_term"]),
        seed=task["seed"],
    )
    return run_hierarchy_cell(
        config,
        spec_label=task["spec_label"],
        num_queries=task["num_queries"],
        max_peers=task["max_peers"],
        num_clusters=task["num_clusters"],
        cluster_budget=task["cluster_budget"],
    )


def hierarchy_sweep(
    sizes: Sequence[int],
    *,
    num_topics: int | None = None,
    num_queries: int = 20,
    max_peers: int = 10,
    num_clusters: int | None = None,
    cluster_budget: int | None = None,
    topic_pool: int = 200,
    docs_per_term: tuple[int, int] = (10, 40),
    spec_label: str = "bf-2048",
    seed: int = 0,
    runner: ExperimentRunner | None = None,
) -> list[HierarchyPoint]:
    """Compare flat vs. super-peer routing at each network size.

    Returns two :class:`HierarchyPoint` rows per size (flat first),
    in sweep order.  ``num_topics`` defaults to one topic per 100
    peers (min 10) so topical locality neither saturates nor vanishes
    as the network grows.  The dense defaults (``topic_pool=200``,
    ``docs_per_term=(10, 40)``, Bloom-filter synopses) put same-topic
    peers at a pairwise document Jaccard around 0.2 — the semantic-
    overlay regime where synopsis clustering can recover the topics;
    sparser corpora or small MIPs synopses degrade clustering purity
    and with it the hierarchical tier's recall.
    """
    if not sizes:
        raise ValueError("a sweep needs at least one network size")
    if runner is None:
        runner = ExperimentRunner(workers=1)
    tasks = [
        {
            "num_peers": size,
            "num_topics": num_topics or max(10, size // 100),
            "num_queries": num_queries,
            "max_peers": max_peers,
            "num_clusters": num_clusters,
            "cluster_budget": cluster_budget,
            "topic_pool": topic_pool,
            "docs_per_term": docs_per_term,
            "spec_label": spec_label,
            "seed": seed,
        }
        for size in sizes
    ]
    pairs = runner.map(hierarchy_cell_task, tasks)
    return [point for pair in pairs for point in pair]
