"""Recall, latency, and message cost under churn × repost interval.

The paper motivates the DHT directory with "resilience to failures and
churn" (Section 1.1) but evaluates a static network; this experiment
supplies the missing measurement.  For every (churn rate, repost
interval) cell it runs the directory as a live service
(:class:`~repro.churn.service.ChurnService`): peers crash, leave, and
recover on a seeded schedule while a query workload races against the
failures with the robustness path on (successor fallback for failed
directory fetches, spare-peer substitution for selected peers that died
mid-query).

The two axes pull against each other: higher churn rates lose more
directory partitions and leave more stale Posts; shorter repost
intervals repair both faster but cost proportionally more maintenance
traffic.  The cell summaries expose exactly that trade — recall and p95
latency against total messages, split into query and maintenance
shares.

Cells are independent pool tasks; every cell's simulation seed is
derived from the sweep seed and the cell's parameters (never from task
position), so results are bit-identical at any ``--workers`` count —
``benchmarks/bench_churn.py`` pins serial-vs-pooled digest equality.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Sequence

from ..churn.maintenance import MaintenanceConfig
from ..churn.membership import ChurnSchedule, MembershipConfig
from ..churn.service import ChurnService
from ..datasets.queries import Query
from ..ir.documents import Corpus
from ..ir.index import InvertedIndex
from ..minerva.engine import MinervaEngine
from ..parallel import ExperimentRunner, SetupHandle, current_setup
from ..parallel.seeding import derive_seed
from ..routing.base import PeerSelector
from ..synopses.factory import SynopsisSpec

__all__ = ["ChurnPoint", "churn_cell_task", "churn_sweep"]


@dataclass(frozen=True)
class ChurnPoint:
    """Aggregate behavior of one (churn rate, repost interval) cell."""

    churn_rate: float
    repost_interval_ms: float
    num_queries: int
    mean_recall: float
    mean_latency_ms: float
    p95_latency_ms: float
    query_messages: int
    maintenance_messages: int
    stale_routes: int
    fallback_successes: int
    directory_fallbacks: int
    degraded_queries: int
    crashes: int
    leaves: int
    nodes_evicted: int
    posts_expired: int
    trace_digest: str

    @property
    def total_messages(self) -> int:
        """Query traffic plus the directory upkeep that made it possible."""
        return self.query_messages + self.maintenance_messages


def _run_cell(
    collections: Sequence[Corpus],
    indexes: Sequence[InvertedIndex],
    queries: Sequence[Query],
    make_selector: Callable[[], PeerSelector],
    *,
    spec: SynopsisSpec,
    churn_rate: float,
    repost_interval_ms: float,
    horizon_ms: float,
    interarrival_ms: float,
    seed: int,
    max_peers: int,
    k: int,
    peer_k: int | None,
    fallback_spares: int,
    replicas: int,
) -> ChurnPoint:
    """One cell: a fresh engine (churn mutates it), schedule, service."""
    engine = MinervaEngine(
        list(collections),
        spec=spec,
        indexes=list(indexes),
        replicas=replicas,
    )
    engine.publish({term for query in queries for term in query.terms})
    # The membership trace depends on the rate but not on the repost
    # interval, so cells along the repost axis replay identical failures
    # and differ only in how maintenance copes with them.
    schedule = ChurnSchedule.generate(
        sorted(engine.peers),
        MembershipConfig.for_rate(churn_rate, horizon_ms=horizon_ms),
        seed=derive_seed(seed, f"membership:{churn_rate!r}"),
    )
    service = ChurnService(
        engine,
        schedule,
        maintenance=MaintenanceConfig.for_repost_interval(
            repost_interval_ms, replicas=replicas
        ),
        seed=derive_seed(seed, "simulation"),
    )
    outcomes = service.run_workload(
        queries,
        make_selector(),
        interarrival_ms=interarrival_ms,
        max_peers=max_peers,
        k=k,
        peer_k=peer_k,
        fallback_spares=fallback_spares,
    )
    latencies = sorted(outcome.latency_ms for outcome in outcomes)
    p95_index = max(0, math.ceil(0.95 * len(latencies)) - 1)
    return ChurnPoint(
        churn_rate=churn_rate,
        repost_interval_ms=repost_interval_ms,
        num_queries=len(outcomes),
        mean_recall=sum(o.final_recall for o in outcomes) / len(outcomes),
        mean_latency_ms=sum(latencies) / len(latencies),
        p95_latency_ms=latencies[p95_index],
        query_messages=sum(o.outcome.cost.total_messages for o in outcomes),
        maintenance_messages=service.stats.maintenance_messages,
        stale_routes=sum(o.stale_routes for o in outcomes),
        fallback_successes=sum(o.fallback_successes for o in outcomes),
        directory_fallbacks=sum(o.directory_fallbacks for o in outcomes),
        degraded_queries=sum(1 for o in outcomes if o.degraded),
        crashes=service.stats.crashes,
        leaves=service.stats.leaves,
        nodes_evicted=service.stats.nodes_evicted,
        posts_expired=service.stats.posts_expired,
        trace_digest=schedule.trace_digest(),
    )


def churn_cell_task(task: dict, seed: int) -> ChurnPoint:
    """Worker entrypoint: one sweep cell on the attached
    (collections, indexes, queries, spec) setup.  The cell's
    simulation seed travels in the task (derived from the sweep's
    declared seed and the cell parameters), so results are independent
    of task position and worker count."""
    del seed  # the sweep's own seed derivation is part of the task
    collections, indexes, queries, spec = current_setup()
    return _run_cell(
        collections,
        indexes,
        queries,
        task["make_selector"],
        spec=spec,
        churn_rate=task["churn_rate"],
        repost_interval_ms=task["repost_interval_ms"],
        horizon_ms=task["horizon_ms"],
        interarrival_ms=task["interarrival_ms"],
        seed=task["seed"],
        max_peers=task["max_peers"],
        k=task["k"],
        peer_k=task["peer_k"],
        fallback_spares=task["fallback_spares"],
        replicas=task["replicas"],
    )


def churn_sweep(
    engine: MinervaEngine,
    queries: Sequence[Query],
    make_selector: Callable[[], PeerSelector],
    *,
    churn_rates: Sequence[float] = (0.5, 1.0, 2.0),
    repost_intervals_ms: Sequence[float] = (10_000.0, 30_000.0),
    horizon_ms: float = 60_000.0,
    interarrival_ms: float = 500.0,
    seed: int = 0,
    max_peers: int = 5,
    k: int = 50,
    peer_k: int | None = None,
    fallback_spares: int = 2,
    replicas: int = 2,
    runner: ExperimentRunner | None = None,
    setup_handle: SetupHandle | None = None,
) -> list[ChurnPoint]:
    """Run the workload at every (churn rate, repost interval) cell.

    ``engine`` supplies the collections and prebuilt indexes; every
    cell constructs its *own* engine from them (churn mutates the ring
    and directory, so cells must not share one) with ``replicas``-way
    directory replication.  Returns one :class:`ChurnPoint` per cell in
    sweep order (rate-major, repost-minor).

    Cells are independent pool tasks on ``runner``; ``make_selector``
    must be picklable for pooled execution (a selector class
    qualifies).  ``setup_handle`` (from ``runner.attach("churn-setup",
    (collections, indexes, queries, spec))``) lets repeated
    sweeps share one worker artifact.
    """
    if not queries:
        raise ValueError("a sweep needs at least one query")
    for rate in churn_rates:
        if rate <= 0:
            raise ValueError(f"churn rates must be positive, got {rate}")
    if runner is None:
        runner = ExperimentRunner(workers=1)
    tasks = [
        {
            "make_selector": make_selector,
            "churn_rate": rate,
            "repost_interval_ms": interval,
            "horizon_ms": horizon_ms,
            "interarrival_ms": interarrival_ms,
            "seed": seed,
            "max_peers": max_peers,
            "k": k,
            "peer_k": peer_k,
            "fallback_spares": fallback_spares,
            "replicas": replicas,
        }
        for rate in churn_rates
        for interval in repost_intervals_ms
    ]
    if setup_handle is None:
        peers = list(engine.peers.values())
        setup_handle = runner.attach(
            "churn-setup",
            (
                [peer.corpus for peer in peers],
                [peer.index for peer in peers],
                list(queries),
                engine.spec,
            ),
        )
    return runner.map(churn_cell_task, tasks, setup=setup_handle)
