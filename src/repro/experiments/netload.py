"""Throughput/latency vs. offered load and loss rate on the simulated net.

Section 8.2's closing claim — "response times are a highly superlinear
function of load" — stated as a measurement: drive the same workload
through :class:`~repro.simnet.executor.SimNetExecutor` at increasing
offered load (queries per second) and message-loss rates, and record
what happens to per-query virtual latency, retries, timeouts, and
recall.  At low load queries barely interact; as offered load grows
their messages share links and the M/M/1 queueing factor inflates every
response superlinearly, while loss converts directly into retry traffic
and (past the retry budget) into partial results.

Everything is deterministic under a fixed seed, so a sweep is exactly
reproducible run to run.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Sequence

from ..datasets.queries import Query
from ..minerva.engine import MinervaEngine
from ..net.latency import LatencyProfile
from ..parallel import ExperimentRunner, SetupHandle, current_setup
from ..routing.base import PeerSelector
from ..simnet.executor import NetworkedQueryOutcome, SimNetExecutor
from ..simnet.faults import FaultPlan
from ..simnet.rpc import RetryPolicy

__all__ = ["NetLoadPoint", "netload_cell_task", "simnet_load_sweep"]


@dataclass(frozen=True)
class NetLoadPoint:
    """Aggregate behavior of one (offered load, loss rate) cell."""

    offered_qps: float
    loss_rate: float
    num_queries: int
    mean_latency_ms: float
    p95_latency_ms: float
    max_latency_ms: float
    mean_recall: float
    timed_out_contacts: int
    forward_retries: int
    degraded_queries: int

    @classmethod
    def from_outcomes(
        cls,
        offered_qps: float,
        loss_rate: float,
        outcomes: Sequence[NetworkedQueryOutcome],
    ) -> "NetLoadPoint":
        """Reduce a cell's per-query outcomes to one summary row."""
        if not outcomes:
            raise ValueError("cannot summarize an empty outcome list")
        latencies = sorted(outcome.latency_ms for outcome in outcomes)
        p95_index = max(0, math.ceil(0.95 * len(latencies)) - 1)
        return cls(
            offered_qps=offered_qps,
            loss_rate=loss_rate,
            num_queries=len(outcomes),
            mean_latency_ms=sum(latencies) / len(latencies),
            p95_latency_ms=latencies[p95_index],
            max_latency_ms=latencies[-1],
            mean_recall=sum(outcome.final_recall for outcome in outcomes)
            / len(outcomes),
            timed_out_contacts=sum(
                len(outcome.timed_out_peers) for outcome in outcomes
            ),
            forward_retries=sum(outcome.forward_retries for outcome in outcomes),
            degraded_queries=sum(1 for outcome in outcomes if outcome.degraded),
        )


def _run_cell(
    engine: MinervaEngine,
    queries: Sequence[Query],
    make_selector: Callable[[], PeerSelector],
    *,
    qps: float,
    loss_rate: float,
    seed: int,
    max_peers: int,
    k: int,
    peer_k: int | None,
    profile: LatencyProfile | None,
    policy: RetryPolicy | None,
) -> NetLoadPoint:
    """One (offered load, loss rate) cell: a fresh executor and selector."""
    executor = SimNetExecutor(
        engine,
        faults=FaultPlan(loss_rate=loss_rate),
        profile=profile,
        policy=policy,
        seed=seed,
    )
    outcomes = executor.run_workload(
        queries,
        make_selector(),
        interarrival_ms=1000.0 / qps,
        max_peers=max_peers,
        k=k,
        peer_k=peer_k,
    )
    return NetLoadPoint.from_outcomes(qps, loss_rate, outcomes)


def netload_cell_task(task: dict, seed: int) -> NetLoadPoint:
    """Worker entrypoint: one sweep cell on the attached (engine,
    queries) setup.  The cell's simulation seed travels in the task (the
    sweep's declared ``seed``), so results match the serial sweep."""
    del seed  # the sweep's own seed is part of the task
    engine, queries = current_setup()
    return _run_cell(
        engine,
        queries,
        task["make_selector"],
        qps=task["qps"],
        loss_rate=task["loss_rate"],
        seed=task["seed"],
        max_peers=task["max_peers"],
        k=task["k"],
        peer_k=task["peer_k"],
        profile=task["profile"],
        policy=task["policy"],
    )


def simnet_load_sweep(
    engine: MinervaEngine,
    queries: Sequence[Query],
    make_selector: Callable[[], PeerSelector],
    *,
    offered_qps: Sequence[float] = (2.0, 10.0, 50.0),
    loss_rates: Sequence[float] = (0.0, 0.1),
    seed: int = 0,
    max_peers: int = 5,
    k: int = 50,
    peer_k: int | None = None,
    profile: LatencyProfile | None = None,
    policy: RetryPolicy | None = None,
    runner: ExperimentRunner | None = None,
    setup_handle: SetupHandle | None = None,
) -> list[NetLoadPoint]:
    """Run the workload at every (offered load, loss rate) combination.

    Each cell gets a fresh executor (fresh virtual clock, transport,
    and seeded RNG — the same ``seed`` for every cell, so cells differ
    only in the swept parameters) and a fresh selector from
    ``make_selector`` (protects against stateful selectors leaking
    between cells).  Returns one :class:`NetLoadPoint` per cell, in
    sweep order (loss-major, load-minor).

    Cells are independent pool tasks on ``runner``; for pooled execution
    ``make_selector``, ``profile``, and ``policy`` must be picklable (a
    selector *class* like ``IQNRouter`` qualifies; a lambda does not).
    ``setup_handle`` (from ``runner.attach("netload-setup", (engine,
    queries))``) lets repeated sweeps share one worker artifact.
    """
    if not queries:
        raise ValueError("a sweep needs at least one query")
    for qps in offered_qps:
        if qps <= 0:
            raise ValueError(f"offered_qps must be positive, got {qps}")
    if runner is None:
        runner = ExperimentRunner(workers=1)
    tasks = [
        {
            "make_selector": make_selector,
            "qps": qps,
            "loss_rate": loss_rate,
            "seed": seed,
            "max_peers": max_peers,
            "k": k,
            "peer_k": peer_k,
            "profile": profile,
            "policy": policy,
        }
        for loss_rate in loss_rates
        for qps in offered_qps
    ]
    handle = setup_handle or runner.attach("netload-setup", (engine, queries))
    return runner.map(netload_cell_task, tasks, setup=handle)
