"""Canonical experiment configurations.

These are the defaults the benchmark harness runs with.  They are scaled
so that a full figure regenerates in minutes on a laptop while keeping
the paper's operative regimes:

- per-peer index lists of several hundred to ~1000 documents for the
  combination placement, which *overloads* a 1024-bit Bloom filter —
  the effect behind Figure 3's "MIPs beats BF at equal budget";
- queried peers contribute their local top-50 against a centralized
  top-100 reference, so high recall requires complementary peers.
"""

from __future__ import annotations

from ..datasets.corpus import GovCorpusConfig

__all__ = [
    "FIG3_CORPUS",
    "FIG3_QUERY_POOL",
    "FIG3_QUERY_POOL_OFFSET",
    "FIG3_NUM_QUERIES",
    "FIG3_REFERENCE_K",
    "FIG3_PEER_K",
    "SMALL_CORPUS",
]

#: Corpus for both Figure 3 testbeds.  8 broad topics of 2000 documents,
#: topically blocked with a smear of 1.2 block-widths, give peers graded
#: topical strengths; query-term document frequencies of ~600-1300 put a
#: combination-placement peer's index lists (several hundred to ~1100
#: entries) into 1024-bit Bloom overload, the regime behind Figure 3's
#: "MIPs beats BF at equal budget".
FIG3_CORPUS = GovCorpusConfig(
    num_docs=16_000,
    vocabulary_size=20_000,
    num_topics=8,
    topic_vocabulary_size=400,
    doc_length_mean=150,
    topic_mix=0.6,
    topic_assignment="blocked",
    topic_smear=1.2,
    seed=2006,
)

#: Query terms come from ranks [8, 40) of a topic's vocabulary — salient
#: but not ubiquitous keywords like the TREC topic-distillation queries
#: ("forest fire"), with document frequencies of several hundred to a
#: thousand.
FIG3_QUERY_POOL = 32
FIG3_QUERY_POOL_OFFSET = 8

#: The paper used 10 queries from the TREC 2003 Web Track.
FIG3_NUM_QUERIES = 10

#: Recall is measured against the centralized top-100 ...
FIG3_REFERENCE_K = 100

#: ... while every queried peer (and the initiator) contributes its
#: local top-30.
FIG3_PEER_K = 30

#: A small corpus for tests and quick demos (seconds, not minutes).
SMALL_CORPUS = GovCorpusConfig(
    num_docs=1_500,
    vocabulary_size=4_000,
    num_topics=6,
    topic_vocabulary_size=120,
    doc_length_mean=80,
    seed=2006,
)
