"""Serving-layer sweep: cache efficacy × query skew × load × churn.

The serving front end (:mod:`repro.serving`) claims three wins over the
one-shot pipeline: repeated queries skip directory traffic and ranking
(plan cache), novelty rescoring stops rebuilding identical synopses
(reference-synopsis cache), and streamed early termination ships only
the result entries that can still matter.  This sweep measures all
three against the *full-forwarding* path — the plain
:meth:`~repro.simnet.executor.SimNetExecutor.run_workload` over the
same Zipf-repeating query log and arrival process — across offered
load (qps), log skew (``zipf_s``), and churn rate.

Every cell also re-asserts the correctness contract where it is
checkable: on churn-free cells the served top-k and queried peers are
compared, query by query, against
:meth:`~repro.minerva.engine.MinervaEngine.run_query_networked` — the
caches and early termination must change bytes and latency, never the
answer.

Cells are independent pool tasks; each cell's simulation seeds are
derived from the sweep seed and the cell parameters (never from task
position), so results are bit-identical at any ``--workers`` count —
``benchmarks/bench_serving.py`` pins serial-vs-pooled digest equality.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Sequence

from ..churn.maintenance import MaintenanceConfig
from ..churn.membership import ChurnSchedule, MembershipConfig
from ..churn.service import ChurnService
from ..datasets.queries import Query, make_query_log
from ..ir.documents import Corpus
from ..ir.index import InvertedIndex
from ..minerva.engine import MinervaEngine
from ..parallel import ExperimentRunner, SetupHandle, current_setup
from ..parallel.seeding import derive_seed
from ..routing.base import PeerSelector
from ..serving.frontend import ServingFrontend
from ..simnet.executor import SimNetExecutor
from ..synopses.factory import SynopsisSpec

__all__ = ["ServePoint", "serve_cell_task", "serve_sweep"]


def _percentile(sorted_values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile of an ascending-sorted sequence."""
    index = max(0, math.ceil(q * len(sorted_values)) - 1)
    return sorted_values[index]


@dataclass(frozen=True)
class ServePoint:
    """Aggregate behavior of one (qps, zipf_s, churn rate) cell.

    ``full_*`` fields describe the full-forwarding reference run over
    the same log and arrival process on an identical fresh engine
    (always fault-free — under churn it is the clean-network yardstick,
    not a raced rerun).  ``bit_identical`` is the per-query equality of
    served top-k and queried peers against ``run_query_networked``; it
    is only asserted on churn-free cells (``identity_checked``).
    """

    qps: float
    zipf_s: float
    churn_rate: float
    num_events: int
    unique_queries: int
    plan_hits: int
    plan_misses: int
    plan_invalidated: int
    plan_repaired: int
    synopsis_hits: int
    synopsis_misses: int
    served_bits: int
    full_bits: int
    served_p50_ms: float
    served_p95_ms: float
    full_p50_ms: float
    full_p95_ms: float
    entries_streamed: int
    entries_full: int
    peers_skipped: int
    mean_batch_rounds: float
    degraded_queries: int
    identity_checked: bool
    bit_identical: bool

    @property
    def plan_hit_rate(self) -> float:
        lookups = self.plan_hits + self.plan_misses
        return self.plan_hits / lookups if lookups else 0.0

    @property
    def served_bits_per_query(self) -> float:
        return self.served_bits / self.num_events if self.num_events else 0.0

    @property
    def full_bits_per_query(self) -> float:
        return self.full_bits / self.num_events if self.num_events else 0.0

    @property
    def bytes_saved_fraction(self) -> float:
        """Fraction of full-forwarding traffic the serving path avoided."""
        if not self.full_bits:
            return 0.0
        return 1.0 - self.served_bits / self.full_bits


def _build_engine(
    collections: Sequence[Corpus],
    indexes: Sequence[InvertedIndex],
    queries: Sequence[Query],
    *,
    spec: SynopsisSpec,
    replicas: int,
) -> MinervaEngine:
    engine = MinervaEngine(
        list(collections), spec=spec, indexes=list(indexes), replicas=replicas
    )
    engine.publish({term for query in queries for term in query.terms})
    return engine


def _run_cell(
    collections: Sequence[Corpus],
    indexes: Sequence[InvertedIndex],
    queries: Sequence[Query],
    make_selector: Callable[[], PeerSelector],
    *,
    spec: SynopsisSpec,
    qps: float,
    zipf_s: float,
    churn_rate: float,
    num_events: int,
    horizon_ms: float,
    seed: int,
    max_peers: int,
    k: int,
    peer_k: int,
    batch_size: int | None,
    fallback_spares: int,
    replicas: int,
) -> ServePoint:
    """One cell: serve the log, rerun it full-forwarding, compare."""
    interarrival_ms = 1000.0 / qps
    log = make_query_log(
        queries,
        num_events=num_events,
        zipf_s=zipf_s,
        seed=derive_seed(seed, f"log:{zipf_s!r}"),
    )
    arrival_seed = derive_seed(seed, "arrivals")
    simulation_seed = derive_seed(seed, "simulation")

    # -- served run (caches + streaming, under churn if configured) ----
    engine = _build_engine(
        collections, indexes, queries, spec=spec, replicas=replicas
    )
    host: SimNetExecutor | ChurnService
    if churn_rate > 0:
        schedule = ChurnSchedule.generate(
            sorted(engine.peers),
            MembershipConfig.for_rate(churn_rate, horizon_ms=horizon_ms),
            seed=derive_seed(seed, f"membership:{churn_rate!r}"),
        )
        host = ChurnService(
            engine, schedule, maintenance=MaintenanceConfig(), seed=simulation_seed
        )
    else:
        host = SimNetExecutor(engine, seed=simulation_seed)
    front = ServingFrontend(
        host,
        make_selector(),
        max_peers=max_peers,
        k=k,
        peer_k=peer_k,
        batch_size=batch_size,
        fallback_spares=fallback_spares,
        successor_fallback=churn_rate > 0,
    )
    served = front.serve_log(
        log, interarrival_ms=interarrival_ms, seed=arrival_seed
    )

    # -- full-forwarding reference over the same log and arrivals ------
    full_engine = _build_engine(
        collections, indexes, queries, spec=spec, replicas=replicas
    )
    executor = SimNetExecutor(full_engine, seed=simulation_seed)
    full = executor.run_workload(
        log,
        make_selector(),
        interarrival_ms=interarrival_ms,
        seed=arrival_seed,
        max_peers=max_peers,
        k=k,
        peer_k=peer_k,
    )

    # -- per-query identity against the one-shot path (churn-free) ----
    identity_checked = churn_rate == 0
    bit_identical = False
    if identity_checked:
        reference = {
            query.query_id: full_engine.run_query_networked(
                query,
                make_selector(),
                max_peers=max_peers,
                k=k,
                peer_k=peer_k,
            )
            for query in queries
        }
        bit_identical = all(
            s.topk == tuple(reference[s.query.query_id].merged[:k])
            and s.queried == reference[s.query.query_id].selected
            for s in served
        )

    served_latencies = sorted(s.latency_ms for s in served)
    full_latencies = sorted(o.latency_ms for o in full)
    plan = front.plan_stats()
    synopsis = front.synopsis_stats()
    return ServePoint(
        qps=qps,
        zipf_s=zipf_s,
        churn_rate=churn_rate,
        num_events=len(served),
        unique_queries=len({s.query.query_id for s in served}),
        plan_hits=plan.hits,
        plan_misses=plan.misses,
        plan_invalidated=plan.invalidated,
        plan_repaired=plan.repaired,
        synopsis_hits=synopsis.hits,
        synopsis_misses=synopsis.misses,
        served_bits=sum(s.cost.total_bits for s in served),
        full_bits=sum(o.outcome.cost.total_bits for o in full),
        served_p50_ms=_percentile(served_latencies, 0.50),
        served_p95_ms=_percentile(served_latencies, 0.95),
        full_p50_ms=_percentile(full_latencies, 0.50),
        full_p95_ms=_percentile(full_latencies, 0.95),
        entries_streamed=sum(s.entries_streamed for s in served),
        entries_full=sum(
            len(results)
            for o in full
            for results in o.outcome.per_peer_results.values()
        ),
        peers_skipped=sum(s.peers_skipped for s in served),
        mean_batch_rounds=(
            sum(s.batch_rounds for s in served) / len(served) if served else 0.0
        ),
        degraded_queries=sum(1 for s in served if s.degraded),
        identity_checked=identity_checked,
        bit_identical=bit_identical,
    )


def serve_cell_task(task: dict, seed: int) -> ServePoint:
    """Worker entrypoint: one sweep cell on the attached
    (collections, indexes, queries, spec) setup.  The cell's seeds are
    derived inside :func:`_run_cell` from the sweep seed and the cell
    parameters (never from task position), so results are independent
    of task order and worker count."""
    del seed  # the sweep's own seed derivation is part of the task
    collections, indexes, queries, spec = current_setup()
    return _run_cell(
        collections,
        indexes,
        queries,
        task["make_selector"],
        spec=spec,
        qps=task["qps"],
        zipf_s=task["zipf_s"],
        churn_rate=task["churn_rate"],
        num_events=task["num_events"],
        horizon_ms=task["horizon_ms"],
        seed=task["seed"],
        max_peers=task["max_peers"],
        k=task["k"],
        peer_k=task["peer_k"],
        batch_size=task["batch_size"],
        fallback_spares=task["fallback_spares"],
        replicas=task["replicas"],
    )


def serve_sweep(
    engine: MinervaEngine,
    queries: Sequence[Query],
    make_selector: Callable[[], PeerSelector],
    *,
    offered_qps: Sequence[float] = (2.0, 10.0, 50.0),
    zipf_skews: Sequence[float] = (0.0, 1.1),
    churn_rates: Sequence[float] = (0.0, 2.0),
    num_events: int = 64,
    horizon_ms: float = 60_000.0,
    seed: int = 0,
    max_peers: int = 5,
    k: int = 20,
    peer_k: int | None = None,
    batch_size: int | None = None,
    fallback_spares: int = 2,
    replicas: int = 2,
    runner: ExperimentRunner | None = None,
    setup_handle: SetupHandle | None = None,
) -> list[ServePoint]:
    """Serve the Zipf log at every (qps, zipf_s, churn rate) cell.

    ``engine`` supplies the collections and prebuilt indexes; every
    cell constructs its own engines from them (a served cell under
    churn mutates its engine, and the full-forwarding reference needs a
    clean twin).  ``churn_rates`` may include ``0.0`` for static cells,
    which additionally assert per-query bit-identity against
    ``run_query_networked``.  Returns one :class:`ServePoint` per cell
    in sweep order (qps-major, then skew, then churn).

    Cells are independent pool tasks on ``runner``; ``make_selector``
    must be picklable for pooled execution (a selector class
    qualifies).  ``setup_handle`` (from ``runner.attach("serve-setup",
    (collections, indexes, queries, spec))``) lets repeated sweeps
    share one worker artifact.
    """
    if not queries:
        raise ValueError("a sweep needs at least one query")
    if num_events <= 0:
        raise ValueError(f"num_events must be positive, got {num_events}")
    for qps in offered_qps:
        if qps <= 0:
            raise ValueError(f"offered qps must be positive, got {qps}")
    for rate in churn_rates:
        if rate < 0:
            raise ValueError(f"churn rates must be >= 0, got {rate}")
    if runner is None:
        runner = ExperimentRunner(workers=1)
    tasks = [
        {
            "make_selector": make_selector,
            "qps": qps,
            "zipf_s": zipf_s,
            "churn_rate": rate,
            "num_events": num_events,
            "horizon_ms": horizon_ms,
            "seed": derive_seed(seed, f"cell:{qps!r}:{zipf_s!r}:{rate!r}"),
            "max_peers": max_peers,
            "k": k,
            "peer_k": k if peer_k is None else peer_k,
            "batch_size": batch_size,
            "fallback_spares": fallback_spares,
            "replicas": replicas,
        }
        for qps in offered_qps
        for zipf_s in zipf_skews
        for rate in churn_rates
    ]
    if setup_handle is None:
        peers = list(engine.peers.values())
        setup_handle = runner.attach(
            "serve-setup",
            (
                [peer.corpus for peer in peers],
                [peer.index for peer in peers],
                list(queries),
                engine.spec,
            ),
        )
    return runner.map(serve_cell_task, tasks, setup=setup_handle)
