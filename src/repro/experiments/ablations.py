"""Ablation harnesses for the paper's design choices and extensions.

- **aggregation** (Section 6): per-peer vs per-term strategies, under
  disjunctive and conjunctive query semantics;
- **histograms** (Section 7.1): flat set novelty vs score-conscious
  weighted novelty on score-skewed collections;
- **budget** (Section 7.2): uniform vs benefit-proportional per-term
  synopsis lengths at a fixed total bit budget;
- **quality/novelty decomposition**: CORI-only vs novelty-only vs the
  full quality*novelty product (why IQN multiplies the two).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..core.aggregation import PerPeerAggregation, PerTermAggregation
from ..core.correlations import CorrelationAwarePerTerm
from ..core.budget import (
    allocate_budget,
    benefit_list_length,
    build_adaptive_posts,
    uniform_budget,
)
from ..core.histogram_routing import HistogramAggregation
from ..core.iqn import IQNRouter
from ..core.novelty import estimate_novelty
from ..datasets.queries import Query
from ..ir.metrics import micro_average
from ..minerva.engine import MinervaEngine
from ..parallel import ExperimentRunner, SetupHandle, current_setup
from ..routing.base import PeerSelector
from ..routing.cori import CoriSelector
from ..synopses.measures import novelty as exact_novelty
from .fig3 import RecallCurve, Testbed, run_recall_experiment

__all__ = [
    "aggregation_ablation",
    "PeerListFetchTrial",
    "peerlist_fetch_ablation",
    "peerlist_fetch_task",
    "quality_novelty_ablation",
    "histogram_ablation",
    "BudgetTrial",
    "budget_ablation",
]


def aggregation_ablation(
    testbed: Testbed,
    *,
    spec_label: str,
    max_peers: int,
    k: int = 50,
    conjunctive: bool = False,
    runner: ExperimentRunner | None = None,
    testbed_handle: SetupHandle | None = None,
) -> list[RecallCurve]:
    """Per-peer vs per-term vs correlation-corrected per-term (Section 6
    plus the paper's future-work correlation extension)."""
    methods: dict[str, tuple[str, PeerSelector]] = {
        "IQN per-peer": (spec_label, IQNRouter(PerPeerAggregation())),
        "IQN per-term": (spec_label, IQNRouter(PerTermAggregation())),
        "IQN per-term+corr": (
            spec_label,
            IQNRouter(CorrelationAwarePerTerm()),
        ),
    }
    return run_recall_experiment(
        testbed,
        max_peers=max_peers,
        k=k,
        conjunctive=conjunctive,
        methods=methods,
        runner=runner,
        testbed_handle=testbed_handle,
    )


@dataclass(frozen=True)
class PeerListFetchTrial:
    """Recall and directory payload for one PeerList fetch mode."""

    mode: str
    mean_final_recall: float
    mean_peerlist_bits: float
    mean_dht_hops: float


def peerlist_fetch_task(task: dict, seed: int) -> tuple[float, float, float]:
    """Worker entrypoint: one query under one PeerList fetch mode."""
    del seed  # routing and directory fetch are fully deterministic
    testbed = current_setup()
    engine = testbed.engine_for(task["spec_label"])
    outcome = engine.run_query(
        testbed.queries[task["query_index"]],
        IQNRouter(),
        max_peers=task["max_peers"],
        k=task["k"],
        peer_k=task["peer_k"],
        peer_list_limit=task["limit"],
    )
    return (
        outcome.final_recall,
        outcome.cost.bits("peerlist_fetch"),
        outcome.cost.messages("dht_hop"),
    )


def peerlist_fetch_ablation(
    testbed: Testbed,
    *,
    spec_label: str,
    max_peers: int,
    k: int = 100,
    peer_k: int | None = 30,
    peer_list_limits: Sequence[int | None] = (None, 10, 20),
    runner: ExperimentRunner | None = None,
    testbed_handle: SetupHandle | None = None,
) -> list[PeerListFetchTrial]:
    """Full PeerList fetch vs distributed top-k retrieval (Section 4).

    ``None`` means fetching the complete PeerLists; an integer runs the
    NRA threshold algorithm for that many top peers and routes over the
    fetched shortlist.  Reports recall and the PeerList payload actually
    shipped, so the efficiency/effectiveness trade is explicit.  Every
    (fetch mode, query) pair is an independent task on ``runner``.
    """
    if runner is None:
        runner = ExperimentRunner(workers=1)
    tasks = [
        {
            "spec_label": spec_label,
            "query_index": query_index,
            "max_peers": max_peers,
            "k": k,
            "peer_k": peer_k,
            "limit": limit,
        }
        for limit in peer_list_limits
        for query_index in range(len(testbed.queries))
    ]
    handle = testbed_handle or runner.attach("fig3-testbed", testbed)
    rows = runner.map(peerlist_fetch_task, tasks, setup=handle)
    trials = []
    num_queries = len(testbed.queries)
    for index, limit in enumerate(peer_list_limits):
        cell = rows[index * num_queries : (index + 1) * num_queries]
        trials.append(
            PeerListFetchTrial(
                mode="full" if limit is None else f"top-{limit}",
                mean_final_recall=micro_average([r[0] for r in cell]),
                mean_peerlist_bits=micro_average([r[1] for r in cell]),
                mean_dht_hops=micro_average([r[2] for r in cell]),
            )
        )
    return trials


def quality_novelty_ablation(
    testbed: Testbed,
    *,
    spec_label: str,
    max_peers: int,
    k: int = 50,
    runner: ExperimentRunner | None = None,
    testbed_handle: SetupHandle | None = None,
) -> list[RecallCurve]:
    """Decompose IQN's product: quality-only, novelty-only, both."""
    methods: dict[str, tuple[str, PeerSelector]] = {
        "quality only (CORI)": (spec_label, CoriSelector()),
        "novelty only": (spec_label, IQNRouter(quality_weighted=False)),
        "quality * novelty (IQN)": (spec_label, IQNRouter()),
    }
    return run_recall_experiment(
        testbed,
        max_peers=max_peers,
        k=k,
        methods=methods,
        runner=runner,
        testbed_handle=testbed_handle,
    )


def histogram_ablation(
    engine_flat: MinervaEngine,
    engine_hist: MinervaEngine,
    queries: Sequence[Query],
    *,
    max_peers: int,
    k: int = 50,
) -> list[RecallCurve]:
    """Flat vs score-conscious (histogram) novelty (Section 7.1).

    ``engine_hist`` must have been built with ``histogram_cells`` and
    published with ``with_histogram=True``; both engines must cover the
    same collections so the curves are comparable.
    """
    variants: list[tuple[str, MinervaEngine, PeerSelector]] = [
        ("IQN flat", engine_flat, IQNRouter(PerPeerAggregation())),
        ("IQN histogram", engine_hist, IQNRouter(HistogramAggregation())),
    ]
    curves = []
    for name, engine, selector in variants:
        per_query = [
            engine.run_query(query, selector, max_peers=max_peers, k=k).recall_at
            for query in queries
        ]
        depth = min(len(r) for r in per_query)
        curves.append(
            RecallCurve(
                method=name,
                recall_at=tuple(
                    micro_average([r[j] for r in per_query]) for j in range(depth)
                ),
            )
        )
    return curves


@dataclass(frozen=True)
class BudgetTrial:
    """Novelty-estimation quality for one allocation policy."""

    policy: str
    total_bits: int
    mean_absolute_error: float


def budget_ablation(
    engine: MinervaEngine,
    queries: Sequence[Query],
    *,
    total_bits: int,
    reference_peer_id: str | None = None,
) -> list[BudgetTrial]:
    """Uniform vs benefit-proportional length allocation (Section 7.2).

    For every peer we allocate ``total_bits`` over the workload's terms
    with each policy, rebuild the per-term MIPs synopses at the allocated
    lengths, and measure the absolute error of the resulting pairwise
    novelty estimates against exact set novelty (candidate peer vs a
    fixed reference peer).  Lower error at equal budget means the policy
    spends bits where they matter.
    """
    peer_ids = sorted(engine.peers)
    if reference_peer_id is None:
        reference_peer_id = peer_ids[0]
    reference_peer = engine.peers[reference_peer_id]
    terms = sorted({term for query in queries for term in query.terms})

    policies = {
        "uniform": lambda index: uniform_budget(terms, total_bits),
        "benefit-proportional": lambda index: allocate_budget(
            index, terms, total_bits, benefit=benefit_list_length
        ),
    }
    trials = []
    for policy_name, allocate in policies.items():
        errors = []
        reference_posts = {
            post.term: post
            for post in build_adaptive_posts(
                reference_peer, allocate(reference_peer.index)
            )
        }
        for peer_id in peer_ids:
            if peer_id == reference_peer_id:
                continue
            peer = engine.peers[peer_id]
            posts = build_adaptive_posts(peer, allocate(peer.index))
            for post in posts:
                ref_post = reference_posts[post.term]
                truth = exact_novelty(
                    peer.local_doc_ids(post.term),
                    reference_peer.local_doc_ids(post.term),
                )
                assert post.synopsis is not None
                assert ref_post.synopsis is not None
                estimate = estimate_novelty(
                    post.synopsis,
                    ref_post.synopsis,
                    candidate_cardinality=float(post.cdf),
                    reference_cardinality=float(ref_post.cdf),
                )
                errors.append(abs(estimate - truth))
        trials.append(
            BudgetTrial(
                policy=policy_name,
                total_bits=total_bits,
                mean_absolute_error=micro_average(errors),
            )
        )
    return trials
