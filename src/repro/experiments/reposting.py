"""Re-posting economics under an evolving crawl (Section 7.2 dynamics).

"Especially when directory entries are replicated for higher availability
and when peers post frequent updates, the network efficiency of posting
synopses is a critical issue."  A peer whose crawl grows must decide how
eagerly to refresh its directory Posts:

- **always** — re-post a term after any change: freshest directory,
  maximum posting bandwidth;
- **threshold(f)** — re-post only terms whose list length drifted by a
  factor ``f`` (:func:`repro.core.adaptive.needs_repost`): the paper's
  "dynamic and automatic adaptation" knob;
- **never** — post once, serve stale statistics forever: zero update
  bandwidth, decaying routing quality.

The experiment grows every peer's collection over several rounds (each
round injects fresh documents from a held-back reserve) and records, per
policy and round, the cumulative posting bits and the workload's recall
— the bandwidth/quality trade as a curve.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..core.iqn import IQNRouter
from ..datasets.corpus import GovCorpusConfig, build_gov_corpus
from ..datasets.partition import corpora_from_doc_id_sets, fragment_corpus
from ..datasets.queries import make_workload
from ..ir.metrics import micro_average
from ..minerva.engine import MinervaEngine
from ..net.cost import MessageKinds
from ..synopses.factory import SynopsisSpec

__all__ = ["RepostingRound", "reposting_experiment", "DEFAULT_POLICIES"]

#: Policy name -> drift factor (None = never re-post, 1.0 = always).
DEFAULT_POLICIES: dict[str, float | None] = {
    "always": 1.0,
    "threshold-1.5": 1.5,
    "threshold-2.5": 2.5,
    "never": None,
}


@dataclass(frozen=True)
class RepostingRound:
    """One (policy, round) measurement."""

    policy: str
    round_index: int
    cumulative_post_bits: int
    posts_this_round: int
    mean_recall: float


def reposting_experiment(
    config: GovCorpusConfig,
    *,
    policies: dict[str, float | None] | None = None,
    rounds: int = 4,
    initial_fraction: float = 0.5,
    num_peers: int = 12,
    num_queries: int = 5,
    query_pool_size: int = 24,
    max_peers: int = 4,
    k: int = 50,
    peer_k: int | None = 20,
    spec_label: str = "mips-64",
    growing_fraction: float = 1.0,
    seed: int = 31,
) -> list[RepostingRound]:
    """Run the growth simulation for every policy; see module docstring.

    Peers start with ``initial_fraction`` of their final collection; the
    remainder arrives in equal slices over ``rounds``.  Every policy
    sees the identical growth schedule, so bits and recall are directly
    comparable.

    ``growing_fraction`` selects how many peers actually grow.  Uniform
    growth (1.0) preserves the network's relative overlap structure, so
    stale synopses keep ranking peers correctly; *skewed* growth (say
    0.3) concentrates new content on a few peers whose rising novelty a
    stale directory cannot see — the regime where lazy re-posting
    costs recall.
    """
    if not 0.0 < initial_fraction < 1.0:
        raise ValueError(
            f"initial_fraction must be in (0, 1), got {initial_fraction}"
        )
    if not 0.0 < growing_fraction <= 1.0:
        raise ValueError(
            f"growing_fraction must be in (0, 1], got {growing_fraction}"
        )
    if rounds <= 0:
        raise ValueError(f"rounds must be positive, got {rounds}")
    policies = policies or DEFAULT_POLICIES
    bad = {n: f for n, f in policies.items() if f is not None and f < 1.0}
    if bad:
        raise ValueError(f"drift factors must be >= 1 (or None): {bad}")

    corpus = build_gov_corpus(config)
    queries = make_workload(
        config, num_queries=num_queries, pool_size=query_pool_size, seed=seed
    )
    query_terms = {t for q in queries for t in q.terms}

    # Final per-peer doc sets (sliding window over all fragments), split
    # into an initial part and per-round growth slices — identical for
    # every policy.
    fragments = fragment_corpus(corpus, num_peers)
    rng = random.Random(seed)
    schedules: list[tuple[list[int], list[list[int]]]] = []
    for index in range(num_peers):
        # window of 3 consecutive fragments, like the sliding placement
        docs = sorted(
            set(fragments[index])
            | set(fragments[(index + 1) % num_peers])
            | set(fragments[(index + 2) % num_peers])
        )
        rng.shuffle(docs)
        initial_count = int(len(docs) * initial_fraction)
        initial = docs[:initial_count]
        remainder = docs[initial_count:]
        slice_size = max(1, len(remainder) // rounds)
        growth = [
            remainder[r * slice_size : (r + 1) * slice_size]
            for r in range(rounds)
        ]
        schedules.append((initial, growth))

    results: list[RepostingRound] = []
    for policy_name, drift in policies.items():
        collections = [
            corpora_from_doc_id_sets(corpus, [set(initial)])[0]
            for initial, _ in schedules
        ]
        engine = MinervaEngine(collections, spec=SynopsisSpec.parse(spec_label))
        engine.publish(query_terms)
        for round_index in range(rounds):
            before = engine.cost.snapshot()
            posts_before = before.messages(MessageKinds.POST)
            growing_count = max(1, round(growing_fraction * num_peers))
            for peer_index, peer_id in enumerate(sorted(engine.peers)):
                if peer_index >= growing_count:
                    continue
                _, growth = schedules[peer_index]
                new_docs = [corpus.get(d) for d in growth[round_index]]
                if not new_docs:
                    continue
                peer = engine.peers[peer_id]
                # Grow without publishing, then apply the policy over the
                # *query terms only*, so every policy pays for the same
                # universe of potential posts.
                drifted = engine.grow_peer(
                    peer_id,
                    new_docs,
                    republish_terms=set(),
                    drift_factor=drift if drift and drift > 1.0 else 1.5,
                )
                if drift is None:
                    republish: set[str] = set()
                elif drift == 1.0:
                    republish = {t for t in query_terms if t in peer.index}
                else:
                    republish = set(drifted) & query_terms
                for term in sorted(republish):
                    engine.directory.publish(peer.build_post(term))
            snap = engine.cost.snapshot()
            recalls = [
                engine.run_query(
                    query,
                    IQNRouter(),
                    max_peers=max_peers,
                    k=k,
                    peer_k=peer_k,
                ).final_recall
                for query in queries
            ]
            results.append(
                RepostingRound(
                    policy=policy_name,
                    round_index=round_index,
                    cumulative_post_bits=snap.bits(MessageKinds.POST),
                    posts_this_round=snap.messages(MessageKinds.POST)
                    - posts_before,
                    mean_recall=micro_average(recalls),
                )
            )
    return results
