"""Experiment harnesses regenerating every table and figure of the paper."""

from .ablations import (
    BudgetTrial,
    PeerListFetchTrial,
    aggregation_ablation,
    peerlist_fetch_ablation,
    budget_ablation,
    histogram_ablation,
    quality_novelty_ablation,
)
from .load import LoadReport, measure_load
from .netload import NetLoadPoint, simnet_load_sweep
from .reposting import DEFAULT_POLICIES, RepostingRound, reposting_experiment
from .fig2 import (
    DEFAULT_SPECS,
    FIG2_LEFT_SIZES,
    FIG2_RIGHT_OVERLAPS,
    ErrorPoint,
    error_vs_collection_size,
    error_vs_overlap,
    resemblance_error,
)
from .fig3 import (
    FIG3_SPEC_LABELS,
    RecallCurve,
    Testbed,
    build_combination_testbed,
    build_sliding_window_testbed,
    default_selectors,
    run_recall_experiment,
)
from .report import (
    format_capability_matrix,
    format_error_points,
    format_recall_curves,
    format_table,
)

__all__ = [
    "ErrorPoint",
    "error_vs_collection_size",
    "error_vs_overlap",
    "resemblance_error",
    "DEFAULT_SPECS",
    "FIG2_LEFT_SIZES",
    "FIG2_RIGHT_OVERLAPS",
    "RecallCurve",
    "Testbed",
    "build_combination_testbed",
    "build_sliding_window_testbed",
    "default_selectors",
    "run_recall_experiment",
    "FIG3_SPEC_LABELS",
    "aggregation_ablation",
    "quality_novelty_ablation",
    "histogram_ablation",
    "budget_ablation",
    "BudgetTrial",
    "peerlist_fetch_ablation",
    "PeerListFetchTrial",
    "LoadReport",
    "measure_load",
    "NetLoadPoint",
    "simnet_load_sweep",
    "RepostingRound",
    "reposting_experiment",
    "DEFAULT_POLICIES",
    "format_table",
    "format_error_points",
    "format_recall_curves",
    "format_capability_matrix",
]
