"""Figure 2 — relative error of resemblance estimation (Section 3.3).

Two sweeps under a common 2048-bit budget ("we restricted all techniques
to a synopsis size of 2,048 bits, and from this space constraint we
derived the parameters"):

- **left chart**: error as a function of the collection size, pairs with
  an expected mutual overlap of 33%;
- **right chart**: error as a function of the mutual overlap
  (50% … 11%), fixed collection size.

We report the mean *absolute* relative error ``|est - true| / true``
averaged over ``runs`` independently drawn set pairs, matching the
paper's "average relative error (i.e., the difference between estimated
and true resemblance over the true resemblance, averaged over 50 runs)".
The paper's footnote observes the estimators are (nearly) unbiased, so
signed errors would average to ~0 — the absolute error is the quantity
its charts can be showing.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from statistics import mean, stdev
from typing import Sequence

from ..datasets.synthetic import pair_with_overlap_fraction
from ..synopses.factory import SynopsisSpec
from ..synopses.measures import resemblance

__all__ = [
    "DEFAULT_SPECS",
    "FIG2_LEFT_SIZES",
    "FIG2_RIGHT_OVERLAPS",
    "ErrorPoint",
    "resemblance_error",
    "error_vs_collection_size",
    "error_vs_overlap",
]

#: The three equal-budget configurations of Figure 2's legend:
#: "MIPs 64", "HSs 32", "BF 2048".
DEFAULT_SPECS = (
    SynopsisSpec.parse("mips-64"),
    SynopsisSpec.parse("hs-32"),
    SynopsisSpec.parse("bf-2048"),
)

#: Collection sizes of the left chart's x-axis (1k .. 60k docs).
FIG2_LEFT_SIZES = (1_000, 5_000, 10_000, 20_000, 30_000, 45_000, 60_000)

#: Mutual overlaps of the right chart's x-axis: 50%, 33%, ..., 11%
#: (the harmonic sequence 1/2 .. 1/9).
FIG2_RIGHT_OVERLAPS = tuple(1.0 / k for k in range(2, 10))


@dataclass(frozen=True)
class ErrorPoint:
    """One (spec, x-value) cell of a Figure 2 chart."""

    spec_label: str
    x_value: float
    mean_relative_error: float
    stdev_relative_error: float
    runs: int


def resemblance_error(
    spec: SynopsisSpec,
    set_a: set[int],
    set_b: set[int],
) -> float:
    """Absolute relative error of one resemblance estimate."""
    true = resemblance(set_a, set_b)
    if true <= 0.0:
        raise ValueError("ground-truth resemblance must be positive")
    estimated = spec.build(set_a).estimate_resemblance(spec.build(set_b))
    return abs(estimated - true) / true


def _sweep(
    specs: Sequence[SynopsisSpec],
    x_values: Sequence[float],
    *,
    runs: int,
    seed: int,
    make_pair,
) -> list[ErrorPoint]:
    points = []
    for spec in specs:
        for x_value in x_values:
            errors = []
            for run in range(runs):
                # A string seed keeps runs independent per (spec, x, run)
                # and reproducible across processes (unlike tuple hash()).
                rng = random.Random(f"{seed}:{spec.label}:{x_value}:{run}")
                set_a, set_b = make_pair(x_value, rng)
                errors.append(resemblance_error(spec, set_a, set_b))
            points.append(
                ErrorPoint(
                    spec_label=spec.label,
                    x_value=x_value,
                    mean_relative_error=mean(errors),
                    stdev_relative_error=stdev(errors) if len(errors) > 1 else 0.0,
                    runs=runs,
                )
            )
    return points


def error_vs_collection_size(
    sizes: Sequence[int] = FIG2_LEFT_SIZES,
    *,
    specs: Sequence[SynopsisSpec] = DEFAULT_SPECS,
    overlap_fraction: float = 1.0 / 3.0,
    runs: int = 50,
    seed: int = 2006,
) -> list[ErrorPoint]:
    """Figure 2, left: error vs documents per collection at fixed overlap."""

    def make_pair(size: float, rng: random.Random):
        return pair_with_overlap_fraction(int(size), overlap_fraction, rng=rng)

    return _sweep(specs, sizes, runs=runs, seed=seed, make_pair=make_pair)


def error_vs_overlap(
    overlaps: Sequence[float] = FIG2_RIGHT_OVERLAPS,
    *,
    specs: Sequence[SynopsisSpec] = DEFAULT_SPECS,
    collection_size: int = 10_000,
    runs: int = 50,
    seed: int = 2006,
) -> list[ErrorPoint]:
    """Figure 2, right: error vs mutual overlap at fixed collection size.

    The paper's prose fixes the size at 10,000 elements (the chart's
    caption says 5,000 — we follow the prose; the shape is identical).
    """

    def make_pair(overlap: float, rng: random.Random):
        return pair_with_overlap_fraction(collection_size, overlap, rng=rng)

    return _sweep(specs, overlaps, runs=runs, seed=seed, make_pair=make_pair)
