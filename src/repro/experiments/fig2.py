"""Figure 2 — relative error of resemblance estimation (Section 3.3).

Two sweeps under a common 2048-bit budget ("we restricted all techniques
to a synopsis size of 2,048 bits, and from this space constraint we
derived the parameters"):

- **left chart**: error as a function of the collection size, pairs with
  an expected mutual overlap of 33%;
- **right chart**: error as a function of the mutual overlap
  (50% … 11%), fixed collection size.

We report the mean *absolute* relative error ``|est - true| / true``
averaged over ``runs`` independently drawn set pairs, matching the
paper's "average relative error (i.e., the difference between estimated
and true resemblance over the true resemblance, averaged over 50 runs)".
The paper's footnote observes the estimators are (nearly) unbiased, so
signed errors would average to ~0 — the absolute error is the quantity
its charts can be showing.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from statistics import mean, stdev
from typing import Sequence

from ..datasets.synthetic import pair_with_overlap_fraction
from ..parallel import ExperimentRunner
from ..synopses.factory import SynopsisSpec
from ..synopses.measures import resemblance

__all__ = [
    "DEFAULT_SPECS",
    "FIG2_LEFT_SIZES",
    "FIG2_RIGHT_OVERLAPS",
    "ErrorPoint",
    "error_cell_task",
    "resemblance_error",
    "error_vs_collection_size",
    "error_vs_overlap",
]

#: The three equal-budget configurations of Figure 2's legend:
#: "MIPs 64", "HSs 32", "BF 2048".
DEFAULT_SPECS = (
    SynopsisSpec.parse("mips-64"),
    SynopsisSpec.parse("hs-32"),
    SynopsisSpec.parse("bf-2048"),
)

#: Collection sizes of the left chart's x-axis (1k .. 60k docs).
FIG2_LEFT_SIZES = (1_000, 5_000, 10_000, 20_000, 30_000, 45_000, 60_000)

#: Mutual overlaps of the right chart's x-axis: 50%, 33%, ..., 11%
#: (the harmonic sequence 1/2 .. 1/9).
FIG2_RIGHT_OVERLAPS = tuple(1.0 / k for k in range(2, 10))


@dataclass(frozen=True)
class ErrorPoint:
    """One (spec, x-value) cell of a Figure 2 chart."""

    spec_label: str
    x_value: float
    mean_relative_error: float
    stdev_relative_error: float
    runs: int


def resemblance_error(
    spec: SynopsisSpec,
    set_a: set[int],
    set_b: set[int],
) -> float:
    """Absolute relative error of one resemblance estimate."""
    true = resemblance(set_a, set_b)
    if true <= 0.0:
        raise ValueError("ground-truth resemblance must be positive")
    estimated = spec.build(set_a).estimate_resemblance(spec.build(set_b))
    return abs(estimated - true) / true


def error_cell_task(task: dict, seed: int) -> ErrorPoint:
    """Worker entrypoint: one (spec, x-value) cell of a Figure 2 chart.

    The cell's randomness derives from the *experiment's* string-seed
    scheme — per (spec, x, run), independent of scheduling — so serial
    and pooled sweeps produce identical points bit for bit.
    """
    del seed  # superseded by the per-run string seeds below
    spec: SynopsisSpec = task["spec"]
    x_value = task["x_value"]
    errors = []
    for run in range(task["runs"]):
        # A string seed keeps runs independent per (spec, x, run)
        # and reproducible across processes (unlike tuple hash()).
        rng = random.Random(f"{task['seed']}:{spec.label}:{x_value}:{run}")
        if task["mode"] == "size":
            set_a, set_b = pair_with_overlap_fraction(
                int(x_value), task["overlap_fraction"], rng=rng
            )
        else:
            set_a, set_b = pair_with_overlap_fraction(
                task["collection_size"], x_value, rng=rng
            )
        errors.append(resemblance_error(spec, set_a, set_b))
    return ErrorPoint(
        spec_label=spec.label,
        x_value=x_value,
        mean_relative_error=mean(errors),
        stdev_relative_error=stdev(errors) if len(errors) > 1 else 0.0,
        runs=task["runs"],
    )


def _sweep(
    specs: Sequence[SynopsisSpec],
    x_values: Sequence[float],
    *,
    runs: int,
    seed: int,
    mode: str,
    overlap_fraction: float | None = None,
    collection_size: int | None = None,
    runner: ExperimentRunner | None = None,
) -> list[ErrorPoint]:
    if runner is None:
        runner = ExperimentRunner(workers=1)
    tasks = [
        {
            "spec": spec,
            "x_value": x_value,
            "runs": runs,
            "seed": seed,
            "mode": mode,
            "overlap_fraction": overlap_fraction,
            "collection_size": collection_size,
        }
        for spec in specs
        for x_value in x_values
    ]
    return runner.map(error_cell_task, tasks)


def error_vs_collection_size(
    sizes: Sequence[int] = FIG2_LEFT_SIZES,
    *,
    specs: Sequence[SynopsisSpec] = DEFAULT_SPECS,
    overlap_fraction: float = 1.0 / 3.0,
    runs: int = 50,
    seed: int = 2006,
    runner: ExperimentRunner | None = None,
) -> list[ErrorPoint]:
    """Figure 2, left: error vs documents per collection at fixed overlap."""
    return _sweep(
        specs,
        sizes,
        runs=runs,
        seed=seed,
        mode="size",
        overlap_fraction=overlap_fraction,
        runner=runner,
    )


def error_vs_overlap(
    overlaps: Sequence[float] = FIG2_RIGHT_OVERLAPS,
    *,
    specs: Sequence[SynopsisSpec] = DEFAULT_SPECS,
    collection_size: int = 10_000,
    runs: int = 50,
    seed: int = 2006,
    runner: ExperimentRunner | None = None,
) -> list[ErrorPoint]:
    """Figure 2, right: error vs mutual overlap at fixed collection size.

    The paper's prose fixes the size at 10,000 elements (the chart's
    caption says 5,000 — we follow the prose; the shape is identical).
    """
    return _sweep(
        specs,
        overlaps,
        runs=runs,
        seed=seed,
        mode="overlap",
        collection_size=collection_size,
        runner=runner,
    )
