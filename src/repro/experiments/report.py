"""Plain-text rendering of experiment results, paper-table style.

Every harness in this package produces small dataclasses; these helpers
turn them into aligned text tables so benchmark runs print the same rows
and series the paper's figures plot.
"""

from __future__ import annotations

from typing import Sequence

from .fig2 import ErrorPoint
from .fig3 import RecallCurve

__all__ = [
    "format_table",
    "format_error_points",
    "format_recall_curves",
    "format_capability_matrix",
]


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]]
) -> str:
    """Align ``rows`` under ``headers`` with two-space gutters."""
    if any(len(row) != len(headers) for row in rows):
        raise ValueError("every row must have one cell per header")
    cells = [[str(h) for h in headers]] + [
        [_format_cell(value) for value in row] for row in rows
    ]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines = []
    for index, row in enumerate(cells):
        lines.append("  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row)))
        if index == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


def _format_cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.4f}"
    return str(value)


def format_error_points(points: Sequence[ErrorPoint], *, x_name: str) -> str:
    """One row per (synopsis, x) pair — a Figure 2 chart as a table."""
    labels = sorted({p.spec_label for p in points})
    x_values = sorted({p.x_value for p in points})
    lookup = {(p.spec_label, p.x_value): p for p in points}
    rows = []
    for x_value in x_values:
        row: list[object] = [
            int(x_value) if float(x_value).is_integer() else f"{x_value:.3f}"
        ]
        for label in labels:
            point = lookup.get((label, x_value))
            row.append("-" if point is None else point.mean_relative_error)
        rows.append(row)
    return format_table([x_name, *labels], rows)


def format_recall_curves(curves: Sequence[RecallCurve]) -> str:
    """One column per queried-peer count, one row per method (Figure 3)."""
    if not curves:
        raise ValueError("no curves to format")
    depth = min(len(c.recall_at) for c in curves)
    headers = ["method", *[f"@{j}" for j in range(depth)]]
    rows = [
        [curve.method, *[f"{curve.recall_at[j]:.3f}" for j in range(depth)]]
        for curve in curves
    ]
    return format_table(headers, rows)


def format_capability_matrix() -> str:
    """Section 3.4's qualitative synopsis comparison as a table."""
    headers = [
        "synopsis",
        "resemblance",
        "union",
        "intersection",
        "difference",
        "heterogeneous sizes",
    ]
    rows = [
        ["Bloom filter", "yes (incl-excl)", "OR", "AND", "AND-NOT", "no"],
        ["Hash sketch", "yes (incl-excl)", "OR", "no", "no", "no"],
        ["MIPs", "yes (unbiased)", "pos-min", "pos-max (heuristic)", "no", "yes"],
    ]
    return format_table(headers, rows)
