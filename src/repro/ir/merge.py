"""Merging per-peer result lists at the query initiator.

Because peer collections overlap, the same global docID arrives from
several peers, usually with *different* scores (each peer scores against
its own local statistics).  The merge deduplicates by docID, keeps the
best observed score per document, and re-ranks.  This mirrors the result
merging of distributed IR ("collection fusion") in its simplest robust
form; the paper's recall metric only depends on *which* documents are
retrieved, not on the fused scores.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

from .topk import ScoredDocument

__all__ = ["merge_results", "weighted_merge"]


def merge_results(
    per_peer_results: Iterable[Sequence[ScoredDocument]],
    *,
    k: int | None = None,
) -> list[ScoredDocument]:
    """Fuse ranked lists from several peers into one ranking.

    Duplicates (same doc_id from multiple peers) collapse to their
    maximum score.  ``k=None`` returns the full fused ranking.
    """
    if k is not None and k <= 0:
        raise ValueError(f"k must be positive or None, got {k}")
    best: dict[int, float] = {}
    for results in per_peer_results:
        for entry in results:
            current = best.get(entry.doc_id)
            if current is None or entry.score > current:
                best[entry.doc_id] = entry.score
    fused = sorted(
        (ScoredDocument(score=score, doc_id=doc_id) for doc_id, score in best.items()),
        reverse=True,
    )
    return fused if k is None else fused[:k]


def weighted_merge(
    per_peer_results: Mapping[str, Sequence[ScoredDocument]],
    peer_weights: Mapping[str, float],
    *,
    k: int | None = None,
) -> list[ScoredDocument]:
    """CORI-style weighted collection fusion.

    The classic distributed-IR merge (Callan 2000): each peer's local
    scores are scaled by its collection-selection score before fusing,
    so documents vouched for by *better* collections rank higher.  Peers
    without a weight default to 1.0 (plain merge); duplicates keep their
    best weighted score.
    """
    if k is not None and k <= 0:
        raise ValueError(f"k must be positive or None, got {k}")
    bad = {p: w for p, w in peer_weights.items() if w < 0}
    if bad:
        raise ValueError(f"peer weights must be >= 0: {bad}")
    best: dict[int, float] = {}
    for peer_id, results in per_peer_results.items():
        weight = peer_weights.get(peer_id, 1.0)
        for entry in results:
            scaled = entry.score * weight
            current = best.get(entry.doc_id)
            if current is None or scaled > current:
                best[entry.doc_id] = scaled
    fused = sorted(
        (ScoredDocument(score=score, doc_id=doc_id) for doc_id, score in best.items()),
        reverse=True,
    )
    return fused if k is None else fused[:k]
