"""Per-peer inverted index with ``<term, docId, score>`` entries.

This is the local data structure every MINERVA peer maintains
(Section 1.2: "each peer locally maintains inverted index lists with
entries of the form <term, docId, score>").  From it a peer derives
everything it publishes to the directory: index list lengths, maximum and
average scores, term-space size, and the per-term docID synopses.

Index lists are kept sorted by descending score so local top-k execution
is a prefix scan.
"""

from __future__ import annotations

from typing import Iterator, NamedTuple

from .documents import Corpus
from .scoring import Scorer, TfIdfScorer

__all__ = ["Posting", "InvertedIndex"]


class Posting(NamedTuple):
    """One ``<docId, score>`` entry of an index list.

    A NamedTuple so tuple ordering by ``(score, doc_id)`` makes
    ``sorted(..., reverse=True)`` a deterministic descending-score
    ranking with doc_id as the tie breaker, and construction stays cheap
    on the index-build hot path (millions of postings).
    """

    score: float
    doc_id: int


class InvertedIndex:
    """Immutable-after-build inverted index over one local collection."""

    def __init__(self, corpus: Corpus, scorer: Scorer | None = None):
        self._scorer = scorer or TfIdfScorer()
        self._corpus = corpus
        self._lists: dict[str, tuple[Posting, ...]] = {}
        self._build()

    def _build(self) -> None:
        corpus = self._corpus
        scorer = self._scorer
        # Term weights (idf-like) are constant per term; compute each once
        # instead of once per posting.
        weights: dict[str, float] = {}
        accumulating: dict[str, list[tuple[float, int]]] = {}
        for document in corpus:
            doc_id = document.doc_id
            for term, tf in document.term_frequencies.items():
                weight = weights.get(term)
                if weight is None:
                    weight = scorer.term_weight(corpus, term)
                    weights[term] = weight
                if weight <= 0.0:
                    continue
                score = weight * scorer.within_document(tf, document, corpus)
                if score <= 0.0:
                    continue
                accumulating.setdefault(term, []).append((score, doc_id))
        # Sort plain tuples (C-speed), then wrap as Postings via map
        # (Posting is a NamedTuple, so this is a cheap C-level call).
        self._lists = {
            term: tuple(map(Posting._make, sorted(pairs, reverse=True)))
            for term, pairs in accumulating.items()
        }

    # -- per-term access ---------------------------------------------------

    def index_list(self, term: str) -> tuple[Posting, ...]:
        """Postings for ``term``, best score first (empty if unknown)."""
        return self._lists.get(term, ())

    def doc_ids(self, term: str) -> frozenset[int]:
        """Global ids of the documents in ``term``'s index list."""
        return frozenset(p.doc_id for p in self.index_list(term))

    def scored_doc_ids(
        self, term: str, *, normalized: bool = True
    ) -> list[tuple[int, float]]:
        """``(doc_id, score)`` pairs for ``term``.

        With ``normalized=True`` scores are divided by the term's maximum
        so they land in ``[0, 1]`` — the form the score-histogram synopses
        of Section 7.1 consume.
        """
        postings = self.index_list(term)
        if not postings:
            return []
        if not normalized:
            return [(p.doc_id, p.score) for p in postings]
        top = postings[0].score or 1.0
        return [(p.doc_id, p.score / top) for p in postings]

    def document_frequency(self, term: str) -> int:
        """Index list length — the paper's ``cdf`` statistic."""
        return len(self.index_list(term))

    def max_score(self, term: str) -> float:
        postings = self.index_list(term)
        return postings[0].score if postings else 0.0

    def average_score(self, term: str) -> float:
        postings = self.index_list(term)
        if not postings:
            return 0.0
        return sum(p.score for p in postings) / len(postings)

    # -- collection-wide statistics -----------------------------------------

    @property
    def corpus(self) -> Corpus:
        return self._corpus

    @property
    def scorer(self) -> Scorer:
        return self._scorer

    @property
    def vocabulary(self) -> frozenset[str]:
        return frozenset(self._lists)

    @property
    def term_space_size(self) -> int:
        """CORI's ``|V_i|``: distinct terms in this peer's index."""
        return len(self._lists)

    @property
    def max_document_frequency(self) -> int:
        """The paper's ``cdf_max``: the longest index list's length."""
        if not self._lists:
            return 0
        return max(len(postings) for postings in self._lists.values())

    def terms(self) -> Iterator[str]:
        return iter(self._lists)

    def __contains__(self, term: str) -> bool:
        return term in self._lists

    def __len__(self) -> int:
        return len(self._lists)

    def __repr__(self) -> str:
        return (
            f"InvertedIndex(terms={len(self._lists)}, "
            f"docs={len(self._corpus)}, scorer={self._scorer.name})"
        )


def build_index(
    corpus: Corpus, scorer: Scorer | None = None
) -> InvertedIndex:
    """Convenience constructor mirroring ``InvertedIndex(corpus, scorer)``."""
    return InvertedIndex(corpus, scorer)
