"""IR substrate: documents, indexing, scoring, local top-k, merging, metrics."""

from .documents import Corpus, Document
from .index import InvertedIndex, Posting, build_index
from .merge import merge_results, weighted_merge
from .metrics import (
    duplicate_fraction,
    micro_average,
    precision_against_reference,
    relative_recall,
    result_ids,
)
from .scoring import BM25Scorer, Scorer, TfIdfScorer
from .tokenize import STOPWORDS, tokenize
from .topk import ScoredDocument, execute_query

__all__ = [
    "Document",
    "Corpus",
    "InvertedIndex",
    "Posting",
    "build_index",
    "Scorer",
    "TfIdfScorer",
    "BM25Scorer",
    "ScoredDocument",
    "execute_query",
    "merge_results",
    "weighted_merge",
    "relative_recall",
    "precision_against_reference",
    "result_ids",
    "micro_average",
    "duplicate_fraction",
    "tokenize",
    "STOPWORDS",
]
