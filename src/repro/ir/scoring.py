"""Relevance scoring for local index lists.

Peers post ``<term, docId, score>`` entries (Section 1.2); the score is a
*local* IR relevance measure — "tf*idf-based scores, scores derived from
statistical language models, or PageRank-like authority scores"
(Section 5.1).  We provide the two classic lexical scorers:

- :class:`TfIdfScorer` — ``(1 + ln tf) * ln(1 + N / df)``;
- :class:`BM25Scorer` — Okapi BM25 with the standard k1/b parameters.

Both are computed against the *local* collection's statistics, exactly as
an autonomous crawling peer would.

The scoring interface is split into a per-term **term weight** (the
idf-like factor, constant across a term's index list and therefore
cached by the index builder) and a **within-document** factor (the
tf-dependent part).  ``score = term_weight * within_document``; the
convenience :meth:`Scorer.score` combines the two for one-off use.
"""

from __future__ import annotations

import abc
import math

from .documents import Corpus, Document

__all__ = ["Scorer", "TfIdfScorer", "BM25Scorer"]


class Scorer(abc.ABC):
    """Scores a document for a single term within a given corpus."""

    @abc.abstractmethod
    def term_weight(self, corpus: Corpus, term: str) -> float:
        """The per-term factor (idf-like); 0 when the term is unknown."""

    @abc.abstractmethod
    def within_document(
        self, tf: int, document: Document, corpus: Corpus
    ) -> float:
        """The per-posting factor from the term frequency ``tf`` (> 0)."""

    def score(self, corpus: Corpus, document: Document, term: str) -> float:
        """Relevance of ``document`` for ``term`` in ``corpus`` (>= 0)."""
        tf = document.frequency(term)
        if tf == 0:
            return 0.0
        weight = self.term_weight(corpus, term)
        if weight <= 0.0:
            return 0.0
        return weight * self.within_document(tf, document, corpus)

    @property
    def name(self) -> str:
        return type(self).__name__


class TfIdfScorer(Scorer):
    """Log-scaled tf * idf.

    ``score = (1 + ln tf) * ln(1 + N / df)`` — zero when the term does
    not occur.  The smoothed idf keeps scores positive even for terms
    present in every local document (common in small crawls).
    """

    def term_weight(self, corpus: Corpus, term: str) -> float:
        df = corpus.document_frequency(term)
        if df == 0:
            return 0.0
        return math.log(1.0 + len(corpus) / df)

    def within_document(
        self, tf: int, document: Document, corpus: Corpus
    ) -> float:
        return 1.0 + math.log(tf)


class BM25Scorer(Scorer):
    """Okapi BM25 with non-negative idf.

    Uses the standard formulation with the idf floored at zero so that
    very common local terms never produce negative relevance (negative
    scores would break the per-term max normalization downstream).
    """

    def __init__(self, k1: float = 1.2, b: float = 0.75):
        if k1 < 0:
            raise ValueError(f"k1 must be >= 0, got {k1}")
        if not 0.0 <= b <= 1.0:
            raise ValueError(f"b must be in [0, 1], got {b}")
        self.k1 = k1
        self.b = b

    def term_weight(self, corpus: Corpus, term: str) -> float:
        df = corpus.document_frequency(term)
        if df == 0:
            return 0.0
        n = len(corpus)
        return max(0.0, math.log((n - df + 0.5) / (df + 0.5) + 1.0))

    def within_document(
        self, tf: int, document: Document, corpus: Corpus
    ) -> float:
        avg_len = corpus.average_document_length or 1.0
        norm = self.k1 * (1.0 - self.b + self.b * document.length / avg_len)
        return tf * (self.k1 + 1.0) / (tf + norm)
