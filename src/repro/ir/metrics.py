"""Evaluation metrics — above all the paper's *relative recall*.

Section 8.1: "a recall of x percent means that the P2P Web search system
... found in its result list x percent of the results that a centralized
search engine with the same scoring/ranking scheme found in the entire
reference collection."  Relative recall is therefore computed against the
top-k of a *centralized reference engine* over the union of all data, not
against human relevance judgements.
"""

from __future__ import annotations

from typing import Collection, Iterable, Sequence

from .topk import ScoredDocument

__all__ = [
    "relative_recall",
    "precision_against_reference",
    "result_ids",
    "micro_average",
    "duplicate_fraction",
]


def result_ids(results: Iterable[ScoredDocument]) -> frozenset[int]:
    """The set of docIDs in a result list."""
    return frozenset(r.doc_id for r in results)


def relative_recall(
    retrieved: Collection[int], reference: Collection[int]
) -> float:
    """``|retrieved ∩ reference| / |reference|`` — 1.0 for empty reference.

    An empty reference means the centralized engine found nothing, so any
    P2P answer trivially retrieves everything there was to retrieve.
    """
    reference_set = frozenset(reference)
    if not reference_set:
        return 1.0
    return len(frozenset(retrieved) & reference_set) / len(reference_set)


def precision_against_reference(
    retrieved: Collection[int], reference: Collection[int]
) -> float:
    """Fraction of retrieved docs that the reference engine also returned."""
    retrieved_set = frozenset(retrieved)
    if not retrieved_set:
        return 0.0
    return len(retrieved_set & frozenset(reference)) / len(retrieved_set)


def micro_average(values: Sequence[float]) -> float:
    """Plain mean, named for how the paper averages over queries."""
    if not values:
        raise ValueError("cannot average an empty sequence")
    return sum(values) / len(values)


def duplicate_fraction(per_peer_results: Sequence[Collection[int]]) -> float:
    """Fraction of contributed result slots wasted on duplicates.

    Motivation metric for the whole paper (Section 1.1: "the query result
    will most likely contain many duplicates"): if peers contribute
    ``total`` result entries of which only ``distinct`` are unique
    documents, ``1 - distinct / total`` is wasted effort.
    """
    total = sum(len(results) for results in per_peer_results)
    if total == 0:
        return 0.0
    distinct: set[int] = set()
    for results in per_peer_results:
        distinct.update(results)
    return 1.0 - len(distinct) / total
