"""Minimal text tokenization for building collections from raw text.

The reproduction's experiments use synthetic term streams, but the
library is also usable on real text (the examples index small snippets).
This tokenizer is deliberately simple — lowercase word extraction with a
small English stopword list and optional length filtering — matching what
Web-scale P2P prototypes of the era shipped.
"""

from __future__ import annotations

import re
from typing import Iterator

__all__ = ["STOPWORDS", "tokenize"]

#: A compact English stopword list (function words only, no stemming).
STOPWORDS = frozenset(
    """
    a an and are as at be but by for from has have in is it its of on or
    that the this to was were will with not no he she they we you i his
    her their our your my me him them us been being do does did
    """.split()
)

_WORD = re.compile(r"[a-z0-9]+")


def tokenize(
    text: str,
    *,
    drop_stopwords: bool = True,
    min_length: int = 2,
) -> Iterator[str]:
    """Yield normalized tokens from ``text``.

    Tokens are lowercased alphanumeric runs; stopwords and tokens shorter
    than ``min_length`` are dropped by default.
    """
    if min_length < 1:
        raise ValueError(f"min_length must be >= 1, got {min_length}")
    for match in _WORD.finditer(text.lower()):
        token = match.group()
        if len(token) < min_length:
            continue
        if drop_stopwords and token in STOPWORDS:
            continue
        yield token
