"""Local top-k query execution over one peer's inverted index.

MINERVA peers answer a forwarded query from their own index only; the
initiator merges per-peer results afterwards (:mod:`repro.ir.merge`).
Both IR query models of Section 6.1 are supported:

- **disjunctive** ("OR"): documents matching *any* query term, scored by
  the sum of their per-term scores — the model behind query expansion and
  automatically generated queries;
- **conjunctive** ("AND"): documents matching *all* terms, the Web-search
  default.
"""

from __future__ import annotations

from typing import NamedTuple, Sequence

from .index import InvertedIndex

__all__ = ["ScoredDocument", "execute_query"]


class ScoredDocument(NamedTuple):
    """A ranked result entry; tuple ordering is by ``(score, doc_id)``."""

    score: float
    doc_id: int


def execute_query(
    index: InvertedIndex,
    terms: Sequence[str],
    *,
    k: int = 10,
    conjunctive: bool = False,
) -> list[ScoredDocument]:
    """Rank the local collection for ``terms`` and return the top ``k``.

    Scores are summed over query terms (the standard disjunctive
    aggregation; for conjunctive queries the sum runs over all terms by
    construction).  Ties break on doc_id, descending, so results are
    deterministic.
    """
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    if not terms:
        return []
    accumulated: dict[int, float] = {}
    matched_terms: dict[int, int] = {}
    for term in set(terms):
        for posting in index.index_list(term):
            accumulated[posting.doc_id] = (
                accumulated.get(posting.doc_id, 0.0) + posting.score
            )
            matched_terms[posting.doc_id] = matched_terms.get(posting.doc_id, 0) + 1
    if conjunctive:
        required = len(set(terms))
        accumulated = {
            doc_id: score
            for doc_id, score in accumulated.items()
            if matched_terms[doc_id] == required
        }
    ranked = sorted(
        (ScoredDocument(score=score, doc_id=doc_id) for doc_id, score in accumulated.items()),
        reverse=True,
    )
    return ranked[:k]
