"""Document and corpus model for the IR substrate.

MINERVA peers each hold a *local collection* of Web documents identified
by **global ids** (the paper: "global ids of documents (e.g., URLs or
unique names of MP3 files)").  Because peer collections overlap, the same
document (same global id, same content) can appear in many collections —
which is exactly the redundancy IQN exploits.

A :class:`Document` is an immutable bag of terms; a :class:`Corpus` is an
id-keyed collection with the aggregate statistics scoring needs (document
frequencies, lengths).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping

__all__ = ["Document", "Corpus"]


@dataclass(frozen=True)
class Document:
    """An immutable document: a global id plus term frequencies."""

    doc_id: int
    term_frequencies: Mapping[str, int]

    def __post_init__(self) -> None:
        if self.doc_id < 0:
            raise ValueError(f"doc_id must be >= 0, got {self.doc_id}")
        bad = {t: f for t, f in self.term_frequencies.items() if f <= 0}
        if bad:
            raise ValueError(f"term frequencies must be positive: {bad}")
        # Freeze the mapping so hashing/equality stay consistent, and
        # precompute the length — it is read once per posting at scoring
        # time.
        object.__setattr__(
            self, "term_frequencies", dict(self.term_frequencies)
        )
        object.__setattr__(
            self, "_length", sum(self.term_frequencies.values())
        )

    @classmethod
    def from_terms(cls, doc_id: int, terms: Iterable[str]) -> "Document":
        """Build a document by counting a term sequence."""
        return cls(doc_id=doc_id, term_frequencies=Counter(terms))

    @property
    def length(self) -> int:
        """Total number of term occurrences (document length)."""
        return self._length  # type: ignore[attr-defined]

    @property
    def vocabulary(self) -> frozenset[str]:
        return frozenset(self.term_frequencies)

    def frequency(self, term: str) -> int:
        return self.term_frequencies.get(term, 0)

    def __contains__(self, term: str) -> bool:
        return term in self.term_frequencies

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Document):
            return NotImplemented
        return (
            self.doc_id == other.doc_id
            and self.term_frequencies == other.term_frequencies
        )

    def __hash__(self) -> int:
        return hash((self.doc_id, frozenset(self.term_frequencies.items())))


@dataclass
class Corpus:
    """A collection of documents keyed by global id.

    Maintains the incremental statistics scorers need: per-term document
    frequency, total token count, and the vocabulary.  Adding the same
    ``doc_id`` twice is an error — a collection is a *set* of documents.
    """

    _documents: dict[int, Document] = field(default_factory=dict)
    _document_frequency: Counter = field(default_factory=Counter)
    _total_length: int = 0

    @classmethod
    def from_documents(cls, documents: Iterable[Document]) -> "Corpus":
        corpus = cls()
        for document in documents:
            corpus.add(document)
        return corpus

    def add(self, document: Document) -> None:
        if document.doc_id in self._documents:
            raise ValueError(f"duplicate doc_id {document.doc_id} in corpus")
        self._documents[document.doc_id] = document
        self._document_frequency.update(document.vocabulary)
        self._total_length += document.length

    # -- lookups -----------------------------------------------------------

    def __len__(self) -> int:
        return len(self._documents)

    def __iter__(self) -> Iterator[Document]:
        return iter(self._documents.values())

    def __contains__(self, doc_id: int) -> bool:
        return doc_id in self._documents

    def get(self, doc_id: int) -> Document:
        try:
            return self._documents[doc_id]
        except KeyError:
            raise KeyError(f"no document with id {doc_id} in corpus") from None

    @property
    def doc_ids(self) -> frozenset[int]:
        return frozenset(self._documents)

    # -- statistics ----------------------------------------------------------

    def document_frequency(self, term: str) -> int:
        """Number of documents containing ``term`` (the paper's ``cdf``)."""
        return self._document_frequency.get(term, 0)

    @property
    def max_document_frequency(self) -> int:
        """Largest per-term document frequency (the paper's ``cdf_max``)."""
        if not self._document_frequency:
            return 0
        return max(self._document_frequency.values())

    @property
    def vocabulary(self) -> frozenset[str]:
        return frozenset(self._document_frequency)

    @property
    def term_space_size(self) -> int:
        """Number of distinct terms — CORI's ``|V_i|`` (Section 5.1)."""
        return len(self._document_frequency)

    @property
    def average_document_length(self) -> float:
        if not self._documents:
            return 0.0
        return self._total_length / len(self._documents)

    def __repr__(self) -> str:
        return (
            f"Corpus(docs={len(self._documents)}, "
            f"terms={self.term_space_size})"
        )
