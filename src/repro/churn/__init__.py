"""Live membership: the directory as a service that survives peer turnover.

The paper's Minerva setting builds the directory once and queries a
frozen peer population; its premise, though, is a *dynamic* P2P network
where the DHT-hosted directory is exactly what outlives peer turnover
(Section 1.1: "resilience to failures and churn").  This package runs
that story on the simnet virtual clock:

- :mod:`repro.churn.membership` — a seeded :class:`ChurnSchedule` of
  join/leave/crash/recover events drawn from session-time
  distributions, bit-identical per seed;
- :mod:`repro.churn.maintenance` — directory upkeep: Post TTLs with
  repost timers, PeerList staleness sweeps, and Chord ring repair
  (crash detection, key-range handoff, post re-replication);
- :mod:`repro.churn.service` — :class:`ChurnService`, which binds a
  :class:`~repro.minerva.engine.MinervaEngine` to a schedule and a
  maintenance config and runs query workloads that genuinely race
  against failures.
"""

from .maintenance import DirectoryMaintainer, MaintenanceConfig
from .membership import (
    EVENT_KINDS,
    ChurnSchedule,
    MembershipConfig,
    MembershipEvent,
)
from .service import ChurnService, ChurnStats

__all__ = [
    "EVENT_KINDS",
    "MembershipEvent",
    "MembershipConfig",
    "ChurnSchedule",
    "MaintenanceConfig",
    "DirectoryMaintainer",
    "ChurnService",
    "ChurnStats",
]
