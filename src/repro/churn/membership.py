"""Seeded membership dynamics: sessions, departures, and returns.

A peer's life under churn alternates *sessions* (up, answering queries,
holding its directory partition) with *downtime*.  Session and downtime
lengths are exponentially distributed — the standard memoryless model
of P2P measurement studies — and every departure is either a graceful
leave (the peer hands its keys over and withdraws its Posts) or an
abrupt crash (its directory partition dies with it and its stale Posts
keep attracting forwards).

Determinism contract: the event trace is a pure function of
``(sorted peer ids, config, seed)``.  Each peer gets its own
SHA-256-derived RNG stream (:func:`~repro.parallel.seeding.derive_seed`),
so the trace does not depend on peer-list order, worker count, or any
interleaving — the property pinned by ``tests/churn/test_membership.py``.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

from ..parallel.seeding import derive_seed

__all__ = ["EVENT_KINDS", "MembershipEvent", "MembershipConfig", "ChurnSchedule"]

#: Valid membership event kinds, in the order a peer can emit them.
EVENT_KINDS = ("crash", "leave", "recover")

#: Milliseconds per simulated minute (churn rates are quoted per minute).
_MS_PER_MINUTE = 60_000.0


@dataclass(frozen=True)
class MembershipEvent:
    """One membership change at a virtual time.

    ``crash`` takes the peer off the network abruptly (its directory
    partition is lost once detected, its Posts go stale); ``leave`` is
    graceful (key handoff, Posts withdrawn); ``recover`` returns the
    peer either way.
    """

    at_ms: float
    peer_id: str
    kind: str

    def __post_init__(self) -> None:
        if self.at_ms < 0:
            raise ValueError(f"at_ms must be >= 0, got {self.at_ms}")
        if self.kind not in EVENT_KINDS:
            raise ValueError(f"kind must be one of {EVENT_KINDS}, got {self.kind!r}")
        if not self.peer_id:
            raise ValueError("peer_id must be non-empty")


@dataclass(frozen=True)
class MembershipConfig:
    """Session-time distributions for one churn scenario.

    - ``mean_session_ms`` — mean up-time before a departure (exponential);
    - ``mean_downtime_ms`` — mean down-time before recovery (exponential);
    - ``crash_fraction`` — probability a departure is an abrupt crash
      rather than a graceful leave;
    - ``horizon_ms`` — no event is generated at or past this time, which
      also bounds the maintenance timers so simulations terminate.
    """

    mean_session_ms: float = 60_000.0
    mean_downtime_ms: float = 15_000.0
    crash_fraction: float = 0.75
    horizon_ms: float = 120_000.0

    def __post_init__(self) -> None:
        if self.mean_session_ms <= 0 or self.mean_downtime_ms <= 0:
            raise ValueError("mean session and downtime must be positive")
        if not 0.0 <= self.crash_fraction <= 1.0:
            raise ValueError(
                f"crash_fraction must be in [0, 1], got {self.crash_fraction}"
            )
        if self.horizon_ms <= 0:
            raise ValueError(f"horizon_ms must be positive, got {self.horizon_ms}")

    @classmethod
    def for_rate(
        cls,
        departures_per_peer_per_min: float,
        *,
        horizon_ms: float = 120_000.0,
        downtime_fraction: float = 0.25,
        crash_fraction: float = 0.75,
    ) -> "MembershipConfig":
        """Config whose expected departure rate matches the given churn rate.

        ``departures_per_peer_per_min`` is the experiments' x-axis: the
        expected number of times one peer goes down per simulated
        minute.  ``downtime_fraction`` sets the mean downtime as a
        fraction of the mean session (down long enough to matter, up
        most of the time).
        """
        if departures_per_peer_per_min <= 0:
            raise ValueError(
                "churn rate must be positive, got "
                f"{departures_per_peer_per_min}"
            )
        if downtime_fraction <= 0:
            raise ValueError(
                f"downtime_fraction must be positive, got {downtime_fraction}"
            )
        mean_session_ms = _MS_PER_MINUTE / departures_per_peer_per_min
        return cls(
            mean_session_ms=mean_session_ms,
            mean_downtime_ms=mean_session_ms * downtime_fraction,
            crash_fraction=crash_fraction,
            horizon_ms=horizon_ms,
        )


class ChurnSchedule:
    """A deterministic, time-ordered membership event trace.

    Build one with :meth:`generate`; the resulting ``events`` tuple is
    sorted by ``(at_ms, peer_id)`` and is bit-identical for a fixed
    ``(peer ids, config, seed)`` on every platform and at any worker
    count (:meth:`trace_digest` pins this in tests).
    """

    def __init__(
        self, events: Iterable[MembershipEvent], *, horizon_ms: float
    ) -> None:
        if horizon_ms <= 0:
            raise ValueError(f"horizon_ms must be positive, got {horizon_ms}")
        self.events: tuple[MembershipEvent, ...] = tuple(
            sorted(events, key=lambda event: (event.at_ms, event.peer_id))
        )
        self.horizon_ms = horizon_ms
        for event in self.events:
            if event.at_ms >= horizon_ms:
                raise ValueError(
                    f"event at {event.at_ms} ms is past the horizon "
                    f"({horizon_ms} ms)"
                )

    @classmethod
    def generate(
        cls,
        peer_ids: Sequence[str],
        config: MembershipConfig,
        *,
        seed: int,
    ) -> "ChurnSchedule":
        """Draw each peer's session/downtime alternation up to the horizon.

        Peers are processed in sorted order and each draws from its own
        ``random.Random(derive_seed(seed, peer_id))`` stream, so the
        trace is independent of input order and of whatever else the
        caller's RNGs are doing.
        """
        events: list[MembershipEvent] = []
        for peer_id in sorted(set(peer_ids)):
            rng = random.Random(derive_seed(seed, f"membership:{peer_id}"))
            at_ms = rng.expovariate(1.0 / config.mean_session_ms)
            up = True
            while at_ms < config.horizon_ms:
                if up:
                    kind = (
                        "crash"
                        if rng.random() < config.crash_fraction
                        else "leave"
                    )
                    events.append(
                        MembershipEvent(at_ms=at_ms, peer_id=peer_id, kind=kind)
                    )
                    at_ms += rng.expovariate(1.0 / config.mean_downtime_ms)
                else:
                    events.append(
                        MembershipEvent(
                            at_ms=at_ms, peer_id=peer_id, kind="recover"
                        )
                    )
                    at_ms += rng.expovariate(1.0 / config.mean_session_ms)
                up = not up
        return cls(events, horizon_ms=config.horizon_ms)

    def events_for(self, peer_id: str) -> tuple[MembershipEvent, ...]:
        """This peer's events, time-ordered."""
        return tuple(e for e in self.events if e.peer_id == peer_id)

    def trace_digest(self) -> str:
        """SHA-256 over the canonical event trace (bit-identity witness).

        Times are rendered with ``repr`` so two traces digest equal only
        when every float is exactly equal.
        """
        canonical = "\n".join(
            f"{event.at_ms!r} {event.peer_id} {event.kind}"
            for event in self.events
        )
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[MembershipEvent]:
        return iter(self.events)

    def __repr__(self) -> str:
        return (
            f"ChurnSchedule(events={len(self.events)}, "
            f"horizon_ms={self.horizon_ms})"
        )
