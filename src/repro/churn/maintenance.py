"""Directory upkeep: Post TTLs, repost timers, staleness sweeps, ring repair.

Under churn the directory is only as good as its maintenance.  Three
mechanisms keep it serviceable, all driven by virtual-clock timers that
:class:`~repro.churn.service.ChurnService` schedules:

- **reposting** — every live peer refreshes its Posts each
  ``repost_interval_ms``, re-creating entries lost to node crashes and
  resetting their freshness stamp;
- **TTL sweeps** — a Post not refreshed within ``post_ttl_ms`` is
  presumed to belong to a departed peer and is dropped from every
  replica's PeerList (the staleness that otherwise wastes forwards);
- **ring repair** — crashed peers' directory nodes are evicted from the
  :class:`~repro.dht.ring.ChordRing` once detected, the keys they held
  are re-owned by their successors, and surviving replicas are copied
  back up to the configured replication factor
  (:meth:`~repro.dht.ring.ChordRing.re_replicate`).

The maintainer is pure bookkeeping over the engine's directory; *when*
any of this runs is the service's business, so all methods take the
current virtual time explicitly (no clock reads, no wall clock —
reprolint RPRL007 enforces this for the whole package).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..minerva.posts import PeerList

if TYPE_CHECKING:
    from ..minerva.engine import MinervaEngine

__all__ = ["MaintenanceConfig", "DirectoryMaintainer"]


@dataclass(frozen=True)
class MaintenanceConfig:
    """Timer intervals and replication factor for directory upkeep.

    ``post_ttl_ms`` must exceed ``repost_interval_ms`` or live peers'
    Posts would expire between refreshes; the default TTL of 2.5
    repost intervals tolerates one missed refresh (peer briefly down)
    before declaring a Post stale.  ``stabilize_interval_ms`` is the
    crash-detection latency: a crashed node keeps receiving (and
    timing out) directory lookups until the next stabilization tick
    evicts it.
    """

    repost_interval_ms: float = 30_000.0
    post_ttl_ms: float = 75_000.0
    stabilize_interval_ms: float = 5_000.0
    replicas: int = 2

    def __post_init__(self) -> None:
        if self.repost_interval_ms <= 0:
            raise ValueError(
                f"repost_interval_ms must be positive, got {self.repost_interval_ms}"
            )
        if self.post_ttl_ms <= self.repost_interval_ms:
            raise ValueError(
                "post_ttl_ms must exceed repost_interval_ms "
                f"({self.post_ttl_ms} <= {self.repost_interval_ms})"
            )
        if self.stabilize_interval_ms <= 0:
            raise ValueError(
                f"stabilize_interval_ms must be positive, "
                f"got {self.stabilize_interval_ms}"
            )
        if self.replicas <= 0:
            raise ValueError(f"replicas must be positive, got {self.replicas}")

    @classmethod
    def for_repost_interval(
        cls,
        repost_interval_ms: float,
        *,
        ttl_factor: float = 2.5,
        stabilize_interval_ms: float = 5_000.0,
        replicas: int = 2,
    ) -> "MaintenanceConfig":
        """Config whose TTL scales with the repost interval (the sweep axis)."""
        if ttl_factor <= 1.0:
            raise ValueError(f"ttl_factor must be > 1, got {ttl_factor}")
        return cls(
            repost_interval_ms=repost_interval_ms,
            post_ttl_ms=repost_interval_ms * ttl_factor,
            stabilize_interval_ms=stabilize_interval_ms,
            replicas=replicas,
        )


class DirectoryMaintainer:
    """Freshness bookkeeping and repair operations over one engine's directory.

    Tracks when each ``(term, peer)`` Post was last published (virtual
    time) and implements the repost / sweep / repair primitives the
    churn service schedules.  Publishing goes through
    :meth:`Directory.publish`, so maintenance traffic is charged to the
    engine's cost model like any other directory operation.
    """

    def __init__(self, engine: "MinervaEngine", config: MaintenanceConfig) -> None:
        self.engine = engine
        self.config = config
        #: (term, peer_id) -> virtual time of the last publish.
        self._posted_at: dict[tuple[str, str], float] = {}
        for term, peer_id in self._directory_entries():
            self._posted_at[(term, peer_id)] = 0.0

    def _directory_entries(self) -> set[tuple[str, str]]:
        entries: set[tuple[str, str]] = set()
        ring = self.engine.ring
        for node_id in ring.node_ids:
            for value in ring.node(node_id).store.values():
                if isinstance(value, PeerList):
                    for peer_id in value.peer_ids:
                        entries.add((value.term, peer_id))
        return entries

    # -- freshness ---------------------------------------------------------

    def record_publish(self, term: str, peer_id: str, now_ms: float) -> None:
        """Stamp one Post as fresh at ``now_ms``."""
        self._posted_at[(term, peer_id)] = now_ms

    def posted_at(self, term: str, peer_id: str) -> float | None:
        """Virtual time the Post was last published (None if unknown)."""
        return self._posted_at.get((term, peer_id))

    def forget_peer(self, peer_id: str) -> None:
        """Drop a departed peer's freshness records (graceful withdrawal)."""
        for key in [k for k in self._posted_at if k[1] == peer_id]:
            del self._posted_at[key]

    # -- repost ------------------------------------------------------------

    def _stored_stats(
        self, term: str, peer_id: str
    ) -> tuple[int, float, float, int] | None:
        """The stats tuple of the Post currently stored at the term's owner.

        Reads the owner node's store directly (no routing, no cost):
        this is maintenance bookkeeping, not a directory lookup.
        """
        ring = self.engine.ring
        stored = ring.owner_of(term).store.get(ring.key_id(term))
        if not isinstance(stored, PeerList):
            return None
        post = stored.get(peer_id)
        if post is None:
            return None
        return (post.cdf, post.max_score, post.avg_score, post.term_space_size)

    def repost(self, peer_id: str, now_ms: float) -> int:
        """Republish one peer's Posts for every term it has published.

        Re-posting overwrites the stored Posts (refreshing synopses and
        statistics), re-creates entries lost to node crashes, and resets
        the TTL stamp.  Returns the number of Posts published.
        """
        count, _ = self.repost_detailed(peer_id, now_ms)
        return count

    def repost_detailed(
        self, peer_id: str, now_ms: float
    ) -> tuple[int, tuple[str, ...]]:
        """:meth:`repost`, also reporting which terms *changed content*.

        A periodic repost usually republishes identical statistics (the
        peer's collection did not change) — a pure TTL refresh that no
        directory consumer can observe.  Terms whose stored stats tuple
        ``(cdf, max_score, avg_score, term_space_size)`` differs from
        the fresh Post — or that were missing from the owner's store
        (lost to a crash) — are returned so cache layers can invalidate
        only on observable changes instead of on every repost tick.
        Returns ``(posts_published, changed_terms)``.
        """
        peer = self.engine.peers[peer_id]
        terms = sorted(
            term for term in self.engine._published_terms if term in peer.index
        )
        changed: list[str] = []
        for term in terms:
            post = peer.build_post(term)
            before = self._stored_stats(term, peer_id)
            if before != (
                post.cdf,
                post.max_score,
                post.avg_score,
                post.term_space_size,
            ):
                changed.append(term)
            self.engine.directory.publish(post)
            self.record_publish(term, peer_id, now_ms)
        return len(terms), tuple(changed)

    # -- TTL sweep ---------------------------------------------------------

    def sweep(self, now_ms: float) -> int:
        """Drop Posts older than the TTL from every replica's PeerList.

        A Post with no freshness record (published before the maintainer
        existed) is stamped ``now_ms`` rather than guessed stale.
        Returns the number of distinct ``(term, peer)`` Posts expired.
        """
        return len(self.sweep_detailed(now_ms))

    def sweep_detailed(self, now_ms: float) -> tuple[tuple[str, str], ...]:
        """:meth:`sweep`, returning the expired ``(term, peer_id)`` keys.

        The keys are sorted, so consumers (cache invalidation, logging)
        see a deterministic order regardless of ring iteration order.
        """
        expired: set[tuple[str, str]] = set()
        ring = self.engine.ring
        for node_id in ring.node_ids:
            for value in ring.node(node_id).store.values():
                if not isinstance(value, PeerList):
                    continue
                for peer_id in sorted(value.peer_ids):
                    key = (value.term, peer_id)
                    stamped = self._posted_at.get(key)
                    if stamped is None:
                        self._posted_at[key] = now_ms
                        continue
                    if now_ms - stamped > self.config.post_ttl_ms:
                        del value.posts[peer_id]
                        expired.add(key)
        for key in expired:
            self._posted_at.pop(key, None)
        return tuple(sorted(expired))

    # -- ring repair -------------------------------------------------------

    def evict_crashed(self, peer_ids: list[str]) -> tuple[int, int]:
        """Evict detected-crashed peers' ring nodes and restore replicas.

        Each eviction loses the node's store (abrupt crash — no
        handoff); a single :meth:`~repro.dht.ring.ChordRing.re_replicate`
        pass then copies surviving replicas onto the keys' new owners.
        Returns ``(nodes_evicted, keys_re_replicated)``.
        """
        ring = self.engine.ring
        node_of_peer = self.engine.directory._node_of_peer
        evicted = 0
        for peer_id in sorted(peer_ids):
            node_id = node_of_peer.get(peer_id)
            if node_id is None or len(ring) <= 1:
                continue
            del node_of_peer[peer_id]
            ring.crash_node(node_id)
            evicted += 1
        copied = ring.re_replicate(self.config.replicas) if evicted else 0
        return evicted, copied

    def rejoin(self, peer_id: str, now_ms: float) -> int:
        """Return a previously evicted peer's node to the ring and repost.

        ``add_node`` hands back the key range the rejoining node now
        owns; a re-replication pass restores the replica invariant, and
        the peer republishes its own Posts fresh.  Returns the number of
        Posts republished.
        """
        node_of_peer = self.engine.directory._node_of_peer
        if peer_id not in node_of_peer:
            node = self.engine.ring.add_node(peer_id)
            node_of_peer[peer_id] = node.node_id
            self.engine.ring.re_replicate(self.config.replicas)
        return self.repost(peer_id, now_ms)

    def __repr__(self) -> str:
        return (
            f"DirectoryMaintainer(posts={len(self._posted_at)}, "
            f"config={self.config})"
        )
