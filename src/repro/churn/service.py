"""The directory as a live service: membership, maintenance, and queries
on one virtual clock.

:class:`ChurnService` binds a fully published
:class:`~repro.minerva.engine.MinervaEngine` to a
:class:`~repro.churn.membership.ChurnSchedule` and a
:class:`~repro.churn.maintenance.MaintenanceConfig`, pre-scheduling
every membership event and every maintenance tick on a
:class:`~repro.simnet.executor.SimNetExecutor`'s clock.  Queries
submitted through :meth:`run_workload` then genuinely race against
failures: a peer the directory routed to may be down by the time the
forward arrives, a directory node may crash holding its key range, and
the maintenance timers (repost, TTL sweep, stabilization) race to
repair the damage.

Failure semantics, per event kind:

- **crash** — the peer's transport goes silent immediately, but its
  ring node (with its directory partition) lingers until the next
  stabilization tick *detects* the crash and evicts it; until then the
  partition serves nothing and lookups that land there time out.
  Eviction loses the node's store; a re-replication pass restores keys
  from surviving replicas.  The peer's Posts stay in the directory,
  stale, until a TTL sweep expires them.
- **leave** — graceful: the peer hands its key range to its successor,
  withdraws its Posts, and goes silent.
- **recover** — the peer's transport comes back, its node rejoins the
  ring (taking back its key range), and it reposts everything fresh.

All timers are finite — ticks are pre-scheduled up to the schedule's
horizon — so :meth:`SimClock.run` always terminates.  Everything is
driven by the virtual clock and seeded RNG streams; reprolint RPRL007
keeps wall-clock calls out of this package.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Callable, Sequence, TypeVar

from ..datasets.queries import Query
from ..minerva.engine import MinervaEngine
from ..net.latency import LatencyProfile
from ..parallel.seeding import derive_seed
from ..routing.base import PeerSelector
from ..simnet.clock import SimClock
from ..simnet.executor import NetworkedQueryOutcome, SimNetExecutor
from ..simnet.faults import FaultPlan
from ..simnet.rpc import RetryPolicy
from .maintenance import DirectoryMaintainer, MaintenanceConfig
from .membership import ChurnSchedule, MembershipEvent

__all__ = ["ChurnStats", "ChurnService", "DirectoryEvent"]

_T = TypeVar("_T")


@dataclass(frozen=True)
class DirectoryEvent:
    """One observable membership or directory-content change.

    Emitted synchronously (at the event's virtual time) to listeners
    registered via :meth:`ChurnService.subscribe` — the hook the serving
    layer's churn-aware caches key their invalidation off:

    - ``crash`` / ``leave`` — ``peer_id`` went silent (plans routing to
      it must be repaired or dropped);
    - ``recover`` — ``peer_id`` is back and reposted ``terms`` fresh
      (it is a candidate that cached plans never considered);
    - ``repost`` — a maintenance repost *changed* the stored statistics
      for ``terms`` (pure TTL refreshes are not reported);
    - ``expire`` — a TTL sweep dropped stale Posts for ``terms``;
    - ``evict`` — stabilization evicted ``peer_id``'s directory node
      and re-replicated its key range;
    - ``reelect`` — a hierarchical topology re-elected a super-peer
      after its predecessor went down: ``peer_id`` is the *new* super,
      ``members`` the cluster's surviving peers, ``terms`` the terms
      whose merged cluster synopses were rebuilt.  Serving caches use
      ``members`` to invalidate exactly the affected cluster's plans.
    """

    kind: str
    at_ms: float
    peer_id: str = ""
    terms: tuple[str, ...] = ()
    members: tuple[str, ...] = ()


@dataclass
class ChurnStats:
    """What the service did while the simulation ran.

    Membership counters tally events actually applied (an event for an
    already-down peer is a no-op); maintenance counters tally repair
    work; ``maintenance_messages``/``maintenance_bits`` are the
    engine-cost delta charged by repost and rejoin publishes — the
    directory upkeep traffic that the churn experiments trade against
    staleness.
    """

    crashes: int = 0
    leaves: int = 0
    recoveries: int = 0
    reposts: int = 0
    posts_expired: int = 0
    nodes_evicted: int = 0
    keys_re_replicated: int = 0
    maintenance_messages: int = 0
    maintenance_bits: int = 0


class ChurnService:
    """Runs one engine's directory as a live service under churn.

    Construction pre-schedules the whole membership trace and every
    repost/stabilization tick up to ``schedule.horizon_ms`` on a fresh
    :class:`SimNetExecutor`; :meth:`run_workload` interleaves a query
    workload with them and drives the clock to completion.  With the
    same ``(engine setup, schedule, config, seed)`` two runs are
    bit-identical.
    """

    def __init__(
        self,
        engine: MinervaEngine,
        schedule: ChurnSchedule,
        *,
        maintenance: MaintenanceConfig | None = None,
        profile: LatencyProfile | None = None,
        faults: FaultPlan | None = None,
        policy: RetryPolicy | None = None,
        seed: int = 0,
    ) -> None:
        self.engine = engine
        self.schedule = schedule
        self.maintenance = maintenance or MaintenanceConfig()
        self.seed = seed
        self.executor = SimNetExecutor(
            engine, profile=profile, faults=faults, policy=policy, seed=seed
        )
        self.maintainer = DirectoryMaintainer(engine, self.maintenance)
        self.stats = ChurnStats()
        #: Crashed peers whose ring nodes stabilization has not yet evicted.
        self._pending_eviction: list[str] = []
        #: Crashed peers the topology has not yet been told about —
        #: super-peer re-election shares the crash *detection* latency.
        self._pending_reelection: list[str] = []
        self._listeners: list[Callable[[DirectoryEvent], None]] = []
        self._schedule_all()

    def subscribe(self, listener: Callable[[DirectoryEvent], None]) -> None:
        """Register a callback for every :class:`DirectoryEvent`.

        Listeners run synchronously inside the clock callback that
        caused the change, in subscription order — so a cache hears
        about a crash before any query submitted later in virtual time
        can hit a stale plan.
        """
        self._listeners.append(listener)

    def unsubscribe(self, listener: Callable[[DirectoryEvent], None]) -> None:
        """Remove a previously subscribed listener.

        Raises ``ValueError`` if the listener was never subscribed (or
        was already removed) — silently ignoring that hides double-
        unsubscribe bugs in cache wiring.
        """
        self._listeners.remove(listener)

    def _emit(
        self,
        kind: str,
        *,
        peer_id: str = "",
        terms: tuple[str, ...] = (),
        members: tuple[str, ...] = (),
    ) -> None:
        if not self._listeners:
            return
        event = DirectoryEvent(
            kind=kind,
            at_ms=self.clock.now,
            peer_id=peer_id,
            terms=terms,
            members=members,
        )
        # Snapshot: a listener may unsubscribe itself mid-dispatch.
        for listener in list(self._listeners):
            listener(event)

    @property
    def clock(self) -> SimClock:
        return self.executor.clock

    def live_peers(self) -> list[str]:
        """Peers currently up (transport answering), sorted."""
        return [
            peer_id
            for peer_id in sorted(self.engine.peers)
            if not self.executor.transport.is_down(peer_id)
        ]

    # -- timer wiring ------------------------------------------------------

    def _schedule_all(self) -> None:
        """Pre-schedule membership events and finite maintenance ticks.

        Everything lands on the clock before it runs, so the heap
        drains (and the simulation terminates) once the last event past
        the horizon has fired.  Same-time ordering is fixed by
        insertion order: membership events first, then repost ticks,
        then stabilization ticks.
        """
        clock = self.executor.clock
        for event in self.schedule:
            clock.schedule_at(
                event.at_ms, lambda e=event: self._apply_event(e)
            )
        horizon = self.schedule.horizon_ms
        at_ms = self.maintenance.repost_interval_ms
        while at_ms < horizon:
            clock.schedule_at(at_ms, self._repost_tick)
            at_ms += self.maintenance.repost_interval_ms
        at_ms = self.maintenance.stabilize_interval_ms
        while at_ms < horizon:
            clock.schedule_at(at_ms, self._stabilize_tick)
            at_ms += self.maintenance.stabilize_interval_ms

    def _charged(self, operation: Callable[[], _T]) -> _T:
        """Run a maintenance operation, crediting its engine-cost delta."""
        cost = self.engine.cost
        messages_before = cost.total_messages
        bits_before = cost.total_bits
        result = operation()
        self.stats.maintenance_messages += cost.total_messages - messages_before
        self.stats.maintenance_bits += cost.total_bits - bits_before
        return result

    # -- membership events -------------------------------------------------

    def _apply_event(self, event: MembershipEvent) -> None:
        if event.kind == "crash":
            self._crash(event.peer_id)
        elif event.kind == "leave":
            self._leave(event.peer_id)
        else:
            self._recover(event.peer_id)

    def _crash(self, peer_id: str) -> None:
        """Abrupt death: transport silent now, ring eviction only on
        the next stabilization tick (crash *detection* latency)."""
        if self.executor.transport.is_down(peer_id):
            return
        self.executor.transport.crash(peer_id)
        self._pending_eviction.append(peer_id)
        if self.engine.topology.hierarchical:
            self._pending_reelection.append(peer_id)
        self.stats.crashes += 1
        self._emit("crash", peer_id=peer_id)

    def _leave(self, peer_id: str) -> None:
        """Graceful departure: key handoff, Posts withdrawn, then silent."""
        if self.executor.transport.is_down(peer_id):
            return
        node_of_peer = self.engine.directory._node_of_peer
        node_id = node_of_peer.get(peer_id)
        if node_id is not None and len(self.engine.ring) > 1:
            del node_of_peer[peer_id]
            self.engine.ring.remove_node(node_id)
            self.engine.ring.re_replicate(self.maintenance.replicas)
        self.engine.purge_posts_of(peer_id)
        self.maintainer.forget_peer(peer_id)
        self.executor.transport.crash(peer_id)
        self.stats.leaves += 1
        self._emit("leave", peer_id=peer_id)
        # Graceful departure is announced, so the topology reacts now
        # (a crash waits for stabilization to *detect* it).
        self._notify_topology_down(peer_id)

    def _recover(self, peer_id: str) -> None:
        """Return: transport up, ring rejoin (if evicted), fresh Posts."""
        if not self.executor.transport.is_down(peer_id):
            return
        self.executor.transport.recover(peer_id)
        if peer_id in self._pending_eviction:
            # Crashed and back before stabilization noticed: the node
            # (store intact) never left the ring; nothing to repair.
            self._pending_eviction.remove(peer_id)
        if peer_id in self._pending_reelection:
            # Back before detection: the topology never saw it down.
            self._pending_reelection.remove(peer_id)
        else:
            self.engine.topology.handle_peer_up(peer_id)
        self.stats.reposts += self._charged(
            lambda: self.maintainer.rejoin(peer_id, self.clock.now)
        )
        self.stats.recoveries += 1
        peer = self.engine.peers[peer_id]
        self._emit(
            "recover",
            peer_id=peer_id,
            terms=tuple(
                sorted(
                    term
                    for term in self.engine._published_terms
                    if term in peer.index
                )
            ),
        )

    def _notify_topology_down(self, peer_id: str) -> None:
        """Tell the topology a peer is gone; emit ``reelect`` if it acted."""
        reelection = self.engine.topology.handle_peer_down(peer_id)
        if reelection is not None:
            self._emit(
                "reelect",
                peer_id=reelection.new_super,
                terms=reelection.terms,
                members=reelection.members,
            )

    # -- maintenance ticks -------------------------------------------------

    def _repost_tick(self) -> None:
        """Every live ring member refreshes its Posts."""
        node_of_peer = self.engine.directory._node_of_peer
        for peer_id in self.live_peers():
            if peer_id not in node_of_peer:
                continue  # evicted and not yet recovered
            count, changed = self._charged(
                lambda p=peer_id: self.maintainer.repost_detailed(  # type: ignore[misc]
                    p, self.clock.now
                )
            )
            self.stats.reposts += count
            if changed:
                self._emit("repost", peer_id=peer_id, terms=changed)

    def _stabilize_tick(self) -> None:
        """Detect crashed nodes, repair the ring, expire stale Posts."""
        if self._pending_eviction:
            pending = sorted(self._pending_eviction)
            evicted, copied = self.maintainer.evict_crashed(
                self._pending_eviction
            )
            self._pending_eviction.clear()
            self.stats.nodes_evicted += evicted
            self.stats.keys_re_replicated += copied
            for peer_id in pending:
                self._emit("evict", peer_id=peer_id)
        if self._pending_reelection:
            # Detection fires here, so re-election shares the eviction
            # latency; sorted order keeps same-tick processing
            # deterministic regardless of crash insertion order.
            for peer_id in sorted(self._pending_reelection):
                self._notify_topology_down(peer_id)
            self._pending_reelection.clear()
        expired = self.maintainer.sweep_detailed(self.clock.now)
        self.stats.posts_expired += len(expired)
        if expired:
            self._emit(
                "expire",
                terms=tuple(sorted({term for term, _ in expired})),
            )

    # -- workloads ---------------------------------------------------------

    def _pick_initiator(self, query: Query) -> str:
        """A deterministic live initiator (all peers if none are up)."""
        candidates = self.live_peers() or sorted(self.engine.peers)
        return candidates[query.query_id % len(candidates)]

    def run_workload(
        self,
        queries: Sequence[Query],
        selector: PeerSelector,
        *,
        interarrival_ms: float = 100.0,
        arrivals: str = "poisson",
        seed: int | None = None,
        start_ms: float = 0.0,
        max_peers: int = 10,
        k: int = 50,
        peer_k: int | None = None,
        conjunctive: bool = False,
        successor_fallback: bool = True,
        fallback_spares: int = 2,
    ) -> list[NetworkedQueryOutcome]:
        """Run a query workload that races against the scheduled churn.

        Arrival times are drawn up front from a seeded stream (so the
        offered load is independent of what churn does); each query's
        *initiator* is chosen only when its arrival fires — among the
        peers alive at that moment — and the query runs with the
        robustness knobs on by default (successor fallback for failed
        directory fetches, ``fallback_spares`` substitute candidates
        for selected peers that die mid-query).  Returns one
        :class:`NetworkedQueryOutcome` per query, in submission order.
        """
        if interarrival_ms <= 0:
            raise ValueError(
                f"interarrival_ms must be positive, got {interarrival_ms}"
            )
        if arrivals not in ("poisson", "uniform"):
            raise ValueError(
                f"arrivals must be poisson or uniform, got {arrivals!r}"
            )
        rng = random.Random(
            derive_seed(self.seed if seed is None else seed, "churn-workload")
        )
        futures: list[Any] = []
        at_ms = start_ms
        for query in queries:
            def submit(q: Query = query) -> None:
                futures.append(
                    self.executor.submit(
                        q,
                        selector,
                        initiator_id=self._pick_initiator(q),
                        max_peers=max_peers,
                        k=k,
                        peer_k=peer_k,
                        conjunctive=conjunctive,
                        successor_fallback=successor_fallback,
                        fallback_spares=fallback_spares,
                    )
                )

            self.executor.clock.schedule_at(at_ms, submit)
            gap = (
                rng.expovariate(1.0 / interarrival_ms)
                if arrivals == "poisson"
                else interarrival_ms
            )
            at_ms += gap
        self.executor.run()
        return [future.value for future in futures]

    def __repr__(self) -> str:
        return (
            f"ChurnService(peers={len(self.engine.peers)}, "
            f"events={len(self.schedule)}, stats={self.stats})"
        )
