"""(Super-)LogLog counting — Durand & Flajolet, ESA 2003.

The paper cites this as the space-improved successor of Flajolet–Martin
hash sketches ("reduced the space complexity and relaxed the required
statistical properties of the hash function").  Instead of an L-bit
bitmap per bucket, each of ``m`` buckets stores only the *maximum* ρ
value observed — 5 bits suffice for 2^32 distinct elements — giving
``m * 5`` bits total.

Estimator::

    E = alpha_m * m * 2^(mean of registers)

with the asymptotic bias correction ``alpha_m ≈ 0.39701`` (we apply the
standard small-range correction via linear counting when many registers
are still empty).  The *super*-LogLog refinement averages only the
smallest ``theta = 70%`` of registers (truncation), which cuts the
standard error from ``1.30/sqrt(m)`` to ``1.05/sqrt(m)``; both
estimators are exposed.

Aggregation mirrors hash sketches: union = register-wise max (exact);
intersection is unsupported.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

import numpy as np

from .base import (
    IncompatibleSynopsesError,
    SetSynopsis,
    UnsupportedOperationError,
)
from .hashing import uniform_hash

__all__ = [
    "LogLogCounter",
    "LOGLOG_ALPHA",
    "REGISTER_BITS",
    "cardinality_from_register_stats",
    "register_cardinality_tables",
    "pack_register_row",
    "pack_register_rows",
]

#: Asymptotic bias-correction constant of the LogLog estimator.
LOGLOG_ALPHA = 0.39701

#: Register width: 5 bits hold ρ values up to 31, enough for 2^31+
#: distinct elements per bucket.
REGISTER_BITS = 5

_MAX_RHO = (1 << REGISTER_BITS) - 1

#: Super-LogLog truncation: keep this fraction of smallest registers.
_TRUNCATION = 0.7


def cardinality_from_register_stats(
    empty_count: int, register_sum: int, num_buckets: int
) -> float:
    """LogLog estimate from the register histogram's sufficient statistics.

    ``empty_count`` drives the small-range linear-counting branch,
    ``register_sum`` the ``2^mean`` extrapolation — exactly the
    arithmetic of :meth:`LogLogCounter.estimate_cardinality` (which
    calls this).  Callers handle the all-empty case themselves.
    """
    if empty_count > num_buckets * 0.3:
        return num_buckets * math.log(num_buckets / empty_count)
    mean_register = register_sum / num_buckets
    return LOGLOG_ALPHA * num_buckets * (2.0**mean_register)


def register_cardinality_tables(num_buckets: int) -> tuple[np.ndarray, np.ndarray]:
    """``(linear_counting, extrapolation)`` lookup tables for batching.

    ``linear_counting[e]`` is the small-range estimate for ``e`` empty
    registers (``e = 0`` is a placeholder — that branch never fires for
    it); ``extrapolation[s]`` the ``2^mean`` estimate for register sum
    ``s``.  Tabulating the scalar function keeps vectorized selection
    bit-identical to per-object estimation.
    """
    linear = np.array(
        [np.inf]
        + [
            cardinality_from_register_stats(e, 0, num_buckets)
            for e in range(1, num_buckets + 1)
        ],
        dtype=np.float64,
    )
    extrapolation = np.array(
        [
            cardinality_from_register_stats(0, s, num_buckets)
            for s in range(num_buckets * _MAX_RHO + 1)
        ],
        dtype=np.float64,
    )
    return linear, extrapolation


def pack_register_row(synopsis: "LogLogCounter") -> np.ndarray:
    """One counter's registers as a ``uint8`` row."""
    return np.fromiter(
        synopsis._registers, dtype=np.uint8, count=synopsis._num_buckets
    )


def pack_register_rows(
    synopses: Sequence["LogLogCounter | None"], num_buckets: int
) -> np.ndarray:
    """Stack counters into a ``(C, m)`` uint8 register matrix.

    ``None`` entries become all-zero rows (the empty counter) so row
    indices stay aligned with the candidate list.
    """
    rows = np.zeros((len(synopses), num_buckets), dtype=np.uint8)
    for index, synopsis in enumerate(synopses):
        if synopsis is not None:
            rows[index] = pack_register_row(synopsis)
    return rows


class LogLogCounter(SetSynopsis):
    """Immutable (super-)LogLog cardinality sketch."""

    __slots__ = ("_num_buckets", "_seed", "_registers", "_cardinality")

    def __init__(
        self,
        num_buckets: int,
        seed: int = 0,
        registers: Sequence[int] | None = None,
    ) -> None:
        if num_buckets <= 0:
            raise ValueError(f"num_buckets must be positive, got {num_buckets}")
        if registers is None:
            registers = (0,) * num_buckets
        if len(registers) != num_buckets:
            raise ValueError(
                f"expected {num_buckets} registers, got {len(registers)}"
            )
        bad = [r for r in registers if not 0 <= r <= _MAX_RHO]
        if bad:
            raise ValueError(f"registers out of range [0, {_MAX_RHO}]: {bad[:3]}")
        self._num_buckets = num_buckets
        self._seed = seed
        self._registers = tuple(int(r) for r in registers)
        self._cardinality: float | None = None

    # -- construction ----------------------------------------------------

    @classmethod
    def from_ids(  # type: ignore[override]
        cls, ids: Iterable[int], *, num_buckets: int = 64, seed: int = 0
    ) -> "LogLogCounter":
        """Build a counter over ``ids``.

        Each element's hash selects a bucket; the rank of the first 1-bit
        of the remaining hash bits (1-based, as in the original paper)
        updates that bucket's max register.
        """
        registers = [0] * num_buckets
        for doc_id in ids:
            h = uniform_hash(doc_id, seed)
            bucket = h % num_buckets
            rest = h // num_buckets
            if rest == 0:
                rho = _MAX_RHO
            else:
                rho = min(_MAX_RHO, ((rest & -rest).bit_length()))
            if rho > registers[bucket]:
                registers[bucket] = rho
        return cls(num_buckets, seed, registers)

    def empty_like(self) -> "LogLogCounter":
        return LogLogCounter(self._num_buckets, self._seed)

    # -- estimation ------------------------------------------------------

    def estimate_cardinality(self) -> float:
        """Plain LogLog estimate with small-range linear counting.

        With many untouched buckets, linear counting on the "bucket hit"
        pattern is far more accurate than the ``2^mean`` extrapolation;
        :func:`cardinality_from_register_stats` picks the branch.
        """
        if self._cardinality is not None:
            return self._cardinality
        if self.is_empty:
            estimate = 0.0
        else:
            estimate = cardinality_from_register_stats(
                self._registers.count(0), sum(self._registers), self._num_buckets
            )
        self._cardinality = estimate
        return estimate

    def estimate_cardinality_super(self) -> float:
        """Super-LogLog: average the smallest 70% of registers only."""
        if self.is_empty:
            return 0.0
        empty = self._registers.count(0)
        if empty > self._num_buckets * 0.3:
            return self._num_buckets * math.log(self._num_buckets / empty)
        kept = sorted(self._registers)[
            : max(1, int(self._num_buckets * _TRUNCATION))
        ]
        mean_register = sum(kept) / len(kept)
        # The truncated estimator needs its own (m-dependent) correction;
        # the simple alpha works well enough for the bucket counts used
        # here and keeps the estimator monotone under union.
        return LOGLOG_ALPHA * self._num_buckets * (2.0**mean_register)

    def estimate_resemblance(self, other: SetSynopsis) -> float:
        """Inclusion–exclusion resemblance, like hash sketches."""
        self.check_compatible(other)
        assert isinstance(other, LogLogCounter)
        union_est = self.union(other).estimate_cardinality()
        if union_est <= 0.0:
            return 0.0
        inter = max(
            0.0,
            self.estimate_cardinality()
            + other.estimate_cardinality()
            - union_est,
        )
        return min(1.0, inter / union_est)

    # -- aggregation -----------------------------------------------------

    def union(self, other: SetSynopsis) -> "LogLogCounter":
        """Register-wise max — exactly the counter of the union."""
        self.check_compatible(other)
        assert isinstance(other, LogLogCounter)
        merged = [max(a, b) for a, b in zip(self._registers, other._registers)]
        return LogLogCounter(self._num_buckets, self._seed, merged)

    def intersect(self, other: SetSynopsis) -> "LogLogCounter":
        self.check_compatible(other)
        raise UnsupportedOperationError(
            "LogLog counters support no intersection aggregation (like "
            "hash sketches, Section 3.4)"
        )

    # -- bookkeeping -----------------------------------------------------

    @property
    def num_buckets(self) -> int:
        return self._num_buckets

    @property
    def seed(self) -> int:
        return self._seed

    @property
    def registers(self) -> tuple[int, ...]:
        return self._registers

    @property
    def size_in_bits(self) -> int:
        return self._num_buckets * REGISTER_BITS

    @property
    def is_empty(self) -> bool:
        return all(r == 0 for r in self._registers)

    def check_compatible(self, other: SetSynopsis) -> None:
        super().check_compatible(other)
        assert isinstance(other, LogLogCounter)
        if (self._num_buckets, self._seed) != (other._num_buckets, other._seed):
            raise IncompatibleSynopsesError(
                "LogLog counters require identical (num_buckets, seed): "
                f"{(self._num_buckets, self._seed)} vs "
                f"{(other._num_buckets, other._seed)}"
            )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, LogLogCounter):
            return NotImplemented
        return (
            self._num_buckets == other._num_buckets
            and self._seed == other._seed
            and self._registers == other._registers
        )

    def __hash__(self) -> int:
        return hash((self._num_buckets, self._seed, self._registers))

    def __repr__(self) -> str:
        return (
            f"LogLogCounter(m={self._num_buckets}, "
            f"est={self.estimate_cardinality():.0f})"
        )
