"""Packed columnar storage for directory synopses.

The object model (one :class:`~repro.minerva.posts.Post` per peer per
term, each holding a synopsis object) caps directories at tens of peers:
every query re-packs C Python objects into matrices before the
vectorized kernels of :mod:`repro.core.fastpath` can run.  This module
inverts the representation — the *directory* stores one contiguous
numpy matrix per synopsis family per term (a Bloom bit-matrix, a MIPs
min-hash matrix, a hash-sketch bitmap matrix, a LogLog register matrix)
plus parallel metadata arrays (``cdf``, ``max_score``, ``avg_score``,
``term_space_size``) and an interned peer-id table.  Packing becomes an
ingest-time cost amortized across queries; the routing hot path attaches
straight to the stored matrices with zero per-peer Python work.

Per-peer objects still materialize lazily (:meth:`TermColumns.synopsis_at`,
:meth:`TermColumns.post_fields`) for the non-fastpath code, and the
payload round-trips exactly: ``materialize(pack(s)) == s`` for every
family, so the compatibility path sees bit-identical synopses.

Synopses whose family or parameters the per-term column cannot hold
(mixed parameters, exotic types, >64-bit sketch bitmaps) drop into a
per-peer *foreign* dict; :attr:`TermColumns.is_pure` tells the routing
layer whether the packed matrix covers every stored synopsis.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from .base import SetSynopsis
from .bloom import BloomFilter, pack_bit_row
from .hashsketch import HashSketch, pack_bitmap_row
from .histogram import ScoreHistogramSynopsis
from .loglog import REGISTER_BITS, LogLogCounter, pack_register_row
from .mips import (
    BITS_PER_POSITION,
    MIPS_MODULUS,
    MinWisePermutations,
    pack_minima_row,
)

__all__ = [
    "PeerIdTable",
    "SynopsisColumn",
    "BloomColumn",
    "MipsColumn",
    "HashSketchColumn",
    "LogLogColumn",
    "TermColumns",
    "column_for",
]

#: Initial row capacity of every column; grows by doubling.
_INITIAL_CAPACITY = 8


class PeerIdTable:
    """Interns peer-id strings to dense integers, shared across terms.

    One table per directory: every :class:`TermColumns` keys its rows by
    the interned integer, so cross-term candidate assembly is pure array
    indexing instead of string-dict probing.
    """

    __slots__ = ("_index", "_names", "_names_cache")

    def __init__(self) -> None:
        self._index: dict[str, int] = {}
        self._names: list[str] = []
        self._names_cache: np.ndarray | None = None

    def intern(self, name: str) -> int:
        """Return the stable integer id for ``name``, assigning if new."""
        interned = self._index.get(name)
        if interned is None:
            interned = len(self._names)
            self._index[name] = interned
            self._names.append(name)
            self._names_cache = None
        return interned

    def lookup(self, name: str) -> int | None:
        return self._index.get(name)

    def name(self, interned: int) -> str:
        return self._names[interned]

    def names_array(self) -> np.ndarray:
        """All interned names as a ``<U`` array (index = interned id).

        NumPy ``<U`` comparison is code-point order, identical to Python
        string comparison — sorts over this array reproduce ``sorted()``
        tie-breaks exactly.
        """
        cache = self._names_cache
        if cache is None or len(cache) != len(self._names):
            cache = np.array(self._names, dtype=np.str_)
            self._names_cache = cache
        return cache

    def __len__(self) -> int:
        return len(self._names)

    def __getstate__(self) -> tuple[list[str]]:
        return (self._names,)

    def __setstate__(self, state: tuple[list[str]]) -> None:
        (names,) = state
        self._names = names
        self._index = {name: position for position, name in enumerate(names)}
        self._names_cache = None


class SynopsisColumn:
    """One contiguous matrix of packed synopsis payloads (row = peer).

    Subclasses fix the family: matrix dtype/width, the row packing, the
    lazy inverse (:meth:`materialize`), and the exact parameter match
    (:meth:`accepts`).  Rows beyond the logical size and rows of peers
    without a synopsis hold :attr:`neutral` — the empty synopsis, which
    is also the identity of the family's union fold.
    """

    __slots__ = ("_matrix",)

    #: Scalar filling vacated / missing rows (the empty synopsis).
    neutral: int = 0

    def __init__(self, capacity: int = _INITIAL_CAPACITY) -> None:
        self._matrix = self._make_matrix(max(1, capacity))

    # -- family hooks ----------------------------------------------------

    def _make_matrix(self, rows: int) -> np.ndarray:
        raise NotImplementedError

    def _pack(self, synopsis: SetSynopsis) -> np.ndarray:
        raise NotImplementedError

    def materialize(self, row: int) -> SetSynopsis:
        """Rebuild the synopsis object stored at ``row`` (compat path)."""
        raise NotImplementedError

    def accepts(self, synopsis: SetSynopsis) -> bool:
        """Whether ``synopsis`` is exactly this column's family + params."""
        raise NotImplementedError

    @property
    def params(self) -> tuple[int, ...]:
        """Family parameters, in the family constructor's order."""
        raise NotImplementedError

    @property
    def bits_per_row(self) -> int:
        """Wire size of one packed synopsis (= ``size_in_bits``)."""
        raise NotImplementedError

    # -- storage ---------------------------------------------------------

    def ensure(self, rows: int) -> None:
        """Grow capacity (by doubling) to hold at least ``rows`` rows."""
        capacity = len(self._matrix)
        if rows <= capacity:
            return
        while capacity < rows:
            capacity *= 2
        grown = self._make_matrix(capacity)
        grown[: len(self._matrix)] = self._matrix
        self._matrix = grown

    def set_row(self, row: int, synopsis: SetSynopsis) -> None:
        self._matrix[row] = self._pack(synopsis)

    def clear_row(self, row: int) -> None:
        self._matrix[row] = self.neutral

    def move_row(self, source: int, target: int) -> None:
        self._matrix[target] = self._matrix[source]
        self._matrix[source] = self.neutral

    def neutral_matrix(self, rows: int) -> np.ndarray:
        """A fresh all-neutral matrix with ``rows`` rows."""
        return self._make_matrix(rows)

    def rows(self, count: int) -> np.ndarray:
        """Live view of the first ``count`` packed rows."""
        return self._matrix[:count]

    def set_packed_row(self, row: int, values: np.ndarray) -> None:
        """Store one already-packed row (cluster-synopsis merging)."""
        self._matrix[row] = values

    def fresh(self, capacity: int) -> "SynopsisColumn":
        """A new empty column with this column's family and parameters.

        Relies on :attr:`params` listing the family parameters in the
        subclass constructor's order (the documented contract).
        """
        return type(self)(*self.params, capacity=capacity)  # type: ignore[call-arg]

    def gather(self, rows: np.ndarray, mask: np.ndarray) -> np.ndarray:
        """Copy the masked rows into a fresh candidate-ordered matrix.

        ``rows`` maps output position to stored row (``-1`` = absent);
        positions where ``mask`` is false — or the row is absent — come
        out neutral, exactly matching how the object-path kernels pack
        ``None`` synopses.
        """
        out = self._make_matrix(len(rows))
        take = mask & (rows >= 0)
        out[take] = self._matrix[rows[take]]
        return out


class BloomColumn(SynopsisColumn):
    """Packed little-endian uint64 bit-matrix of Bloom filters."""

    __slots__ = ("num_bits", "num_hashes", "seed", "_words")

    def __init__(
        self,
        num_bits: int,
        num_hashes: int,
        seed: int,
        capacity: int = _INITIAL_CAPACITY,
    ) -> None:
        self.num_bits = num_bits
        self.num_hashes = num_hashes
        self.seed = seed
        self._words = (num_bits + 63) // 64
        super().__init__(capacity)

    def _make_matrix(self, rows: int) -> np.ndarray:
        return np.zeros((rows, self._words), dtype=np.uint64)

    def _pack(self, synopsis: SetSynopsis) -> np.ndarray:
        assert isinstance(synopsis, BloomFilter)
        return pack_bit_row(synopsis.raw_bits, self.num_bits)

    def materialize(self, row: int) -> BloomFilter:
        payload = self._matrix[row].astype("<u8").tobytes()
        return BloomFilter(
            self.num_bits,
            self.num_hashes,
            self.seed,
            int.from_bytes(payload, "little"),
        )

    def accepts(self, synopsis: SetSynopsis) -> bool:
        return type(synopsis) is BloomFilter and (
            synopsis.num_bits,
            synopsis.num_hashes,
            synopsis.seed,
        ) == (self.num_bits, self.num_hashes, self.seed)

    @property
    def params(self) -> tuple[int, ...]:
        return (self.num_bits, self.num_hashes, self.seed)

    @property
    def bits_per_row(self) -> int:
        return self.num_bits


class MipsColumn(SynopsisColumn):
    """Packed int64 minima matrix of MIPs vectors (sentinel = empty)."""

    __slots__ = ("num_permutations", "seed")

    neutral: int = MIPS_MODULUS

    def __init__(
        self, num_permutations: int, seed: int, capacity: int = _INITIAL_CAPACITY
    ) -> None:
        self.num_permutations = num_permutations
        self.seed = seed
        super().__init__(capacity)

    def _make_matrix(self, rows: int) -> np.ndarray:
        return np.full((rows, self.num_permutations), MIPS_MODULUS, dtype=np.int64)

    def _pack(self, synopsis: SetSynopsis) -> np.ndarray:
        assert isinstance(synopsis, MinWisePermutations)
        return pack_minima_row(synopsis)

    def materialize(self, row: int) -> MinWisePermutations:
        return MinWisePermutations(self._matrix[row].tolist(), self.seed)

    def accepts(self, synopsis: SetSynopsis) -> bool:
        return (
            type(synopsis) is MinWisePermutations
            and synopsis.num_permutations == self.num_permutations
            and synopsis.seed == self.seed
        )

    @property
    def params(self) -> tuple[int, ...]:
        return (self.num_permutations, self.seed)

    @property
    def bits_per_row(self) -> int:
        return BITS_PER_POSITION * self.num_permutations


class HashSketchColumn(SynopsisColumn):
    """Packed uint64 bitmap matrix of PCSA hash sketches (L <= 64)."""

    __slots__ = ("num_bitmaps", "bitmap_length", "seed")

    def __init__(
        self,
        num_bitmaps: int,
        bitmap_length: int,
        seed: int,
        capacity: int = _INITIAL_CAPACITY,
    ) -> None:
        self.num_bitmaps = num_bitmaps
        self.bitmap_length = bitmap_length
        self.seed = seed
        super().__init__(capacity)

    def _make_matrix(self, rows: int) -> np.ndarray:
        return np.zeros((rows, self.num_bitmaps), dtype=np.uint64)

    def _pack(self, synopsis: SetSynopsis) -> np.ndarray:
        assert isinstance(synopsis, HashSketch)
        return pack_bitmap_row(synopsis)

    def materialize(self, row: int) -> HashSketch:
        return HashSketch(
            self.num_bitmaps,
            self.bitmap_length,
            self.seed,
            self._matrix[row].tolist(),
        )

    def accepts(self, synopsis: SetSynopsis) -> bool:
        return type(synopsis) is HashSketch and (
            synopsis.num_bitmaps,
            synopsis.bitmap_length,
            synopsis.seed,
        ) == (self.num_bitmaps, self.bitmap_length, self.seed)

    @property
    def params(self) -> tuple[int, ...]:
        return (self.num_bitmaps, self.bitmap_length, self.seed)

    @property
    def bits_per_row(self) -> int:
        return self.num_bitmaps * self.bitmap_length


class LogLogColumn(SynopsisColumn):
    """Packed uint8 register matrix of LogLog counters."""

    __slots__ = ("num_buckets", "seed")

    def __init__(
        self, num_buckets: int, seed: int, capacity: int = _INITIAL_CAPACITY
    ) -> None:
        self.num_buckets = num_buckets
        self.seed = seed
        super().__init__(capacity)

    def _make_matrix(self, rows: int) -> np.ndarray:
        return np.zeros((rows, self.num_buckets), dtype=np.uint8)

    def _pack(self, synopsis: SetSynopsis) -> np.ndarray:
        assert isinstance(synopsis, LogLogCounter)
        return pack_register_row(synopsis)

    def materialize(self, row: int) -> LogLogCounter:
        return LogLogCounter(self.num_buckets, self.seed, self._matrix[row].tolist())

    def accepts(self, synopsis: SetSynopsis) -> bool:
        return (
            type(synopsis) is LogLogCounter
            and synopsis.num_buckets == self.num_buckets
            and synopsis.seed == self.seed
        )

    @property
    def params(self) -> tuple[int, ...]:
        return (self.num_buckets, self.seed)

    @property
    def bits_per_row(self) -> int:
        return self.num_buckets * REGISTER_BITS


def column_for(
    synopsis: SetSynopsis, capacity: int = _INITIAL_CAPACITY
) -> SynopsisColumn | None:
    """A fresh column matching ``synopsis``'s exact family and parameters.

    Returns ``None`` for families the packed matrices cannot represent
    (subclasses, >64-bit sketch bitmaps, unknown types); those synopses
    stay as per-peer objects in :attr:`TermColumns._foreign`.
    """
    if isinstance(synopsis, BloomFilter) and type(synopsis) is BloomFilter:
        return BloomColumn(
            synopsis.num_bits, synopsis.num_hashes, synopsis.seed, capacity
        )
    if (
        isinstance(synopsis, MinWisePermutations)
        and type(synopsis) is MinWisePermutations
    ):
        return MipsColumn(synopsis.num_permutations, synopsis.seed, capacity)
    if isinstance(synopsis, HashSketch) and type(synopsis) is HashSketch:
        if synopsis.bitmap_length > 64:
            return None
        return HashSketchColumn(
            synopsis.num_bitmaps, synopsis.bitmap_length, synopsis.seed, capacity
        )
    if isinstance(synopsis, LogLogCounter) and type(synopsis) is LogLogCounter:
        return LogLogColumn(synopsis.num_buckets, synopsis.seed, capacity)
    return None


class TermColumns:
    """One term's directory state as parallel packed arrays.

    Rows are dense (``0 .. len-1``); removal swaps the last row into the
    hole, so every array stays contiguous.  The vacated slot is cleared
    so pickled bytes depend only on the logical content plus the
    deterministic capacity history — required by the content-addressed
    experiment setup cache.
    """

    __slots__ = (
        "term",
        "_table",
        "_peer_ids",
        "_cdf",
        "_max_score",
        "_avg_score",
        "_term_space",
        "_has_synopsis",
        "_size",
        "_row_of",
        "_column",
        "_foreign",
        "_histograms",
        "_order_cache",
        "_inverse_cache",
    )

    def __init__(self, term: str, table: PeerIdTable) -> None:
        self.term = term
        self._table = table
        self._peer_ids = np.zeros(_INITIAL_CAPACITY, dtype=np.int64)
        self._cdf = np.zeros(_INITIAL_CAPACITY, dtype=np.int64)
        self._max_score = np.zeros(_INITIAL_CAPACITY, dtype=np.float64)
        self._avg_score = np.zeros(_INITIAL_CAPACITY, dtype=np.float64)
        self._term_space = np.zeros(_INITIAL_CAPACITY, dtype=np.int64)
        self._has_synopsis = np.zeros(_INITIAL_CAPACITY, dtype=bool)
        self._size = 0
        self._row_of: dict[int, int] = {}
        self._column: SynopsisColumn | None = None
        self._foreign: dict[int, SetSynopsis] = {}
        self._histograms: dict[int, ScoreHistogramSynopsis] = {}
        self._order_cache: np.ndarray | None = None
        self._inverse_cache: np.ndarray | None = None

    # -- ingest ----------------------------------------------------------

    def upsert(
        self,
        peer_id: str,
        cdf: int,
        max_score: float,
        avg_score: float,
        term_space_size: int,
        synopsis: SetSynopsis | None,
        histogram: ScoreHistogramSynopsis | None,
    ) -> int:
        """Insert or overwrite one peer's posting; returns its row."""
        interned = self._table.intern(peer_id)
        row = self._row_of.get(interned)
        if row is None:
            row = self._size
            self._grow(row + 1)
            self._size = row + 1
            self._row_of[interned] = row
            self._peer_ids[row] = interned
        self._cdf[row] = cdf
        self._max_score[row] = max_score
        self._avg_score[row] = avg_score
        self._term_space[row] = term_space_size
        self._store_synopsis(row, interned, synopsis)
        if histogram is None:
            self._histograms.pop(interned, None)
        else:
            self._histograms[interned] = histogram
        self._invalidate()
        return row

    def _store_synopsis(
        self, row: int, interned: int, synopsis: SetSynopsis | None
    ) -> None:
        column = self._column
        if synopsis is None:
            self._has_synopsis[row] = False
            self._foreign.pop(interned, None)
            if column is not None:
                column.clear_row(row)
            return
        self._has_synopsis[row] = True
        if column is None:
            column = column_for(synopsis, capacity=len(self._peer_ids))
            if column is not None:
                self._column = column
        if column is not None and column.accepts(synopsis):
            column.set_row(row, synopsis)
            self._foreign.pop(interned, None)
        else:
            if column is not None:
                column.clear_row(row)
            self._foreign[interned] = synopsis

    def remove(self, peer_id: str) -> bool:
        """Drop one peer's posting (swap-with-last); False if absent."""
        interned = self._table.lookup(peer_id)
        if interned is None:
            return False
        row = self._row_of.pop(interned, None)
        if row is None:
            return False
        last = self._size - 1
        if row != last:
            moved = int(self._peer_ids[last])
            self._peer_ids[row] = moved
            self._cdf[row] = self._cdf[last]
            self._max_score[row] = self._max_score[last]
            self._avg_score[row] = self._avg_score[last]
            self._term_space[row] = self._term_space[last]
            self._has_synopsis[row] = self._has_synopsis[last]
            if self._column is not None:
                self._column.move_row(last, row)
            self._row_of[moved] = row
        elif self._column is not None:
            self._column.clear_row(last)
        self._peer_ids[last] = 0
        self._cdf[last] = 0
        self._max_score[last] = 0.0
        self._avg_score[last] = 0.0
        self._term_space[last] = 0
        self._has_synopsis[last] = False
        self._size = last
        self._foreign.pop(interned, None)
        self._histograms.pop(interned, None)
        self._invalidate()
        return True

    def _grow(self, needed: int) -> None:
        capacity = len(self._peer_ids)
        if needed <= capacity:
            return
        while capacity < needed:
            capacity *= 2
        for name in ("_peer_ids", "_cdf", "_term_space"):
            grown = np.zeros(capacity, dtype=np.int64)
            grown[: self._size] = getattr(self, name)[: self._size]
            setattr(self, name, grown)
        for name in ("_max_score", "_avg_score"):
            grown_scores = np.zeros(capacity, dtype=np.float64)
            grown_scores[: self._size] = getattr(self, name)[: self._size]
            setattr(self, name, grown_scores)
        grown_flags = np.zeros(capacity, dtype=bool)
        grown_flags[: self._size] = self._has_synopsis[: self._size]
        self._has_synopsis = grown_flags
        if self._column is not None:
            self._column.ensure(capacity)

    def _invalidate(self) -> None:
        self._order_cache = None
        self._inverse_cache = None

    # -- views -----------------------------------------------------------

    @property
    def table(self) -> PeerIdTable:
        return self._table

    @property
    def synopsis_column(self) -> SynopsisColumn | None:
        return self._column

    @property
    def is_pure(self) -> bool:
        """True when every stored synopsis lives in the packed column."""
        return not self._foreign

    def interned_ids(self) -> np.ndarray:
        return self._peer_ids[: self._size]

    def cdf_values(self) -> np.ndarray:
        return self._cdf[: self._size]

    def max_scores(self) -> np.ndarray:
        return self._max_score[: self._size]

    def avg_scores(self) -> np.ndarray:
        return self._avg_score[: self._size]

    def term_space_values(self) -> np.ndarray:
        return self._term_space[: self._size]

    def synopsis_flags(self) -> np.ndarray:
        return self._has_synopsis[: self._size]

    def row_for(self, interned: int) -> int | None:
        return self._row_of.get(interned)

    def quality_order(self) -> np.ndarray:
        """Row permutation sorting by ``(max_score, cdf, peer_id)`` desc.

        Cached until the next mutation, so repeated quality-ordered
        fetches (``Directory.peer_list_batch`` from many requesters)
        reuse one sort.  The key triple is unique per row (peer ids are
        unique within a term), so reversing the ascending lexsort equals
        ``sorted(..., reverse=True)`` exactly.
        """
        order = self._order_cache
        if order is None:
            names = self._table.names_array()[self.interned_ids()]
            order = np.lexsort((names, self.cdf_values(), self.max_scores()))[::-1]
            self._order_cache = order
        return order

    def peer_rows(self, interned: np.ndarray) -> np.ndarray:
        """Map interned peer ids to this term's rows (``-1`` = absent)."""
        inverse = self._inverse_cache
        if inverse is None or len(inverse) < len(self._table):
            inverse = np.full(len(self._table), -1, dtype=np.int64)
            inverse[self.interned_ids()] = np.arange(self._size, dtype=np.int64)
            self._inverse_cache = inverse
        return inverse[interned]

    def synopsis_at(self, row: int) -> SetSynopsis | None:
        """Materialize the synopsis stored at ``row`` (compat path)."""
        if not self._has_synopsis[row]:
            return None
        interned = int(self._peer_ids[row])
        foreign = self._foreign.get(interned)
        if foreign is not None:
            return foreign
        column = self._column
        assert column is not None  # flagged rows are packed or foreign
        return column.materialize(row)

    def post_fields(
        self, row: int
    ) -> tuple[
        str,
        int,
        float,
        float,
        int,
        SetSynopsis | None,
        ScoreHistogramSynopsis | None,
    ]:
        """Everything needed to rebuild the Post stored at ``row``."""
        interned = int(self._peer_ids[row])
        return (
            self._table.name(interned),
            int(self._cdf[row]),
            float(self._max_score[row]),
            float(self._avg_score[row]),
            int(self._term_space[row]),
            self.synopsis_at(row),
            self._histograms.get(interned),
        )

    def synopsis_bits(self) -> int:
        """Total wire bits of all stored synopses (packed + foreign)."""
        flagged = int(np.count_nonzero(self.synopsis_flags()))
        packed = flagged - len(self._foreign)
        bits = sum(synopsis.size_in_bits for synopsis in self._foreign.values())
        if self._column is not None and packed > 0:
            bits += packed * self._column.bits_per_row
        return bits

    def histogram_bits(self) -> int:
        return sum(
            histogram.size_in_bits for histogram in self._histograms.values()
        )

    def __len__(self) -> int:
        return self._size

    # -- pickling --------------------------------------------------------

    def __getstate__(self) -> dict[str, Any]:
        state = {name: getattr(self, name) for name in self.__slots__}
        state["_order_cache"] = None
        state["_inverse_cache"] = None
        return state

    def __setstate__(self, state: dict[str, Any]) -> None:
        for name, value in state.items():
            setattr(self, name, value)
