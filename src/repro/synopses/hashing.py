"""Deterministic hash families shared by all synopsis types.

The paper requires that *every peer in the network uses the same sequence
of hash functions* so that synopses built independently by different
peers are comparable (Section 5.3: "The only agreement that needs to be
disseminated among and obeyed by all participating peers is that they use
the same sequence of hash functions for creating their permutations.").

We therefore derive every hash function deterministically from a small
integer *family seed* that plays the role of that network-wide agreement.
Python's builtin ``hash`` is randomized per process and must never be
used here; we use SplitMix64, a well-studied 64-bit finalizer with good
avalanche behaviour, implemented in pure Python.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

import numpy as np

__all__ = [
    "MERSENNE_PRIME_61",
    "ids_to_uint64_array",
    "splitmix64",
    "splitmix64_array",
    "uniform_hash",
    "uniform_hash_array",
    "LinearPermutation",
    "LinearHashFamily",
]

#: A large Mersenne prime used as the modulus ``U`` of the paper's linear
#: permutation hashes ``h_i(x) = (a_i * x + b_i) mod U``.  Using a prime
#: makes ``x -> a*x + b`` a true permutation of ``Z_U`` for ``a != 0``.
MERSENNE_PRIME_61 = (1 << 61) - 1

_MASK64 = (1 << 64) - 1


def ids_to_uint64_array(ids: Iterable[int] | np.ndarray) -> np.ndarray:
    """Convert an iterable of integer ids to a ``uint64`` array, mod 2^64.

    Shared by every synopsis ``from_ids`` constructor so the wrap-around
    semantics (``id & (2^64 - 1)``) are defined in exactly one place.
    The common case — ids that already fit in 64 bits — converts through
    a single bulk ``np.array`` call instead of a per-element Python
    generator; arbitrary-precision or negative ids fall back to the
    explicit masked path with identical results.
    """
    if isinstance(ids, np.ndarray):
        if ids.dtype == np.uint64:
            return ids
        if ids.dtype.kind in "iu":
            return ids.astype(np.uint64)
        ids = ids.tolist()
    id_list = ids if isinstance(ids, (list, tuple)) else list(ids)
    if not id_list:
        return np.empty(0, dtype=np.uint64)
    array: np.ndarray | None
    try:
        array = np.asarray(id_list)
    except OverflowError:
        array = None
    if array is not None and array.dtype.kind in "iu":
        return array.astype(np.uint64)
    # Arbitrary-precision ids (object dtype) wrap explicitly; non-integer
    # inputs raise TypeError from the bitwise mask, as before.
    return np.fromiter(
        (i & _MASK64 for i in id_list), dtype=np.uint64, count=len(id_list)
    )


def splitmix64(x: int) -> int:
    """Return the SplitMix64 mix of ``x`` as an unsigned 64-bit integer.

    SplitMix64 is a bijective finalizer on 64-bit integers with strong
    avalanche properties, which makes it suitable both as a pseudo-uniform
    hash (for hash sketches and Bloom filters) and as a seed sequencer
    (for deriving the ``a_i, b_i`` coefficients of linear permutations).
    """
    x = (x + 0x9E3779B97F4A7C15) & _MASK64
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _MASK64
    return x ^ (x >> 31)


def splitmix64_array(values: np.ndarray) -> np.ndarray:
    """Vectorized :func:`splitmix64` over a ``uint64`` array.

    Bit-identical to the scalar version — unsigned 64-bit NumPy
    arithmetic wraps exactly like the masked Python-int arithmetic.
    """
    x = values.astype(np.uint64, copy=True)
    x += np.uint64(0x9E3779B97F4A7C15)
    x = (x ^ (x >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)
    x = (x ^ (x >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)
    return x ^ (x >> np.uint64(31))


def uniform_hash(key: int, seed: int = 0) -> int:
    """Hash ``key`` to a pseudo-uniform unsigned 64-bit value.

    Different ``seed`` values yield (empirically) independent hash
    functions, which is what Bloom filters' ``k`` probes and hash
    sketches' stochastic averaging require.
    """
    return splitmix64((key & _MASK64) ^ splitmix64(seed))


def uniform_hash_array(keys: np.ndarray, seed: int = 0) -> np.ndarray:
    """Vectorized :func:`uniform_hash` — same values, array at a time."""
    salt = np.uint64(splitmix64(seed))
    return splitmix64_array(keys.astype(np.uint64) ^ salt)


@dataclass(frozen=True)
class LinearPermutation:
    """One linear permutation ``h(x) = (a*x + b) mod U`` over ``Z_U``.

    This is exactly the permutation family of Broder et al. used by the
    paper's MIPs synopsis (Section 3.2, Figure 1).  ``a`` must be nonzero
    modulo ``U`` for the map to be a bijection.
    """

    a: int
    b: int
    modulus: int = MERSENNE_PRIME_61

    def __post_init__(self) -> None:
        if self.modulus <= 1:
            raise ValueError(f"modulus must be > 1, got {self.modulus}")
        if self.a % self.modulus == 0:
            raise ValueError("coefficient 'a' must be nonzero mod modulus")

    def __call__(self, x: int) -> int:
        return (self.a * x + self.b) % self.modulus


class LinearHashFamily:
    """A reproducible, lazily-extended sequence of linear permutations.

    Two ``LinearHashFamily`` instances created with the same ``seed``
    produce the identical sequence of permutations, no matter how many
    each instance has materialized.  That property is what lets two
    autonomous peers build MIPs vectors of *different lengths* that are
    still comparable on their common prefix (Section 5.3).
    """

    def __init__(self, seed: int = 0, modulus: int = MERSENNE_PRIME_61) -> None:
        if modulus <= 1:
            raise ValueError(f"modulus must be > 1, got {modulus}")
        self.seed = seed
        self.modulus = modulus
        self._permutations: list[LinearPermutation] = []

    def permutation(self, index: int) -> LinearPermutation:
        """Return the ``index``-th permutation, materializing as needed."""
        if index < 0:
            raise IndexError(f"permutation index must be >= 0, got {index}")
        while len(self._permutations) <= index:
            i = len(self._permutations)
            # Derive (a, b) from the family seed and position; reject a == 0.
            a = splitmix64(self.seed ^ splitmix64(2 * i + 1)) % self.modulus
            b = splitmix64(self.seed ^ splitmix64(2 * i + 2)) % self.modulus
            if a == 0:
                a = 1
            self._permutations.append(LinearPermutation(a, b, self.modulus))
        return self._permutations[index]

    def permutations(self, count: int) -> list[LinearPermutation]:
        """Return the first ``count`` permutations of the family."""
        if count < 0:
            raise ValueError(f"count must be >= 0, got {count}")
        if count:
            self.permutation(count - 1)
        return self._permutations[:count]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"LinearHashFamily(seed={self.seed}, modulus={self.modulus}, "
            f"materialized={len(self._permutations)})"
        )
