"""Hash sketches (Flajolet–Martin probabilistic counting / PCSA).

A hash sketch estimates the number of distinct elements in a (multi)set.
Each element is hashed pseudo-uniformly; the position ``ρ`` of the least
significant 1-bit of the hash follows ``P(ρ = k) = 2^{-k-1}``, so an
``n``-element set tends to set bits ``0 .. log2(n)`` of a bitmap.  The
PCSA variant ("probabilistic counting with stochastic averaging",
Flajolet & Martin 1985) splits elements across ``m`` bitmaps by another
hash and averages the per-bitmap statistic ``R_j`` (index of the lowest
*unset* bit), estimating::

    n  ≈  (m / φ) * 2^{ mean_j R_j }        φ ≈ 0.77351

The paper's "HSs 32" configuration under a 2048-bit budget corresponds to
32 bitmaps of 64 bits each.

Aggregation properties (Sections 5.2, 5.3, 6.1):

- **Union** is exact: bitwise OR of corresponding bitmaps — a bit is set
  in the union sketch iff some element of either set would set it.
- **Intersection** has *no* known low-error construction; we raise
  :class:`~repro.synopses.base.UnsupportedOperationError`, which is
  precisely the limitation that rules hash sketches out for conjunctive
  multi-keyword routing in the paper.
- Resemblance is derived by inclusion–exclusion from ``|A|``, ``|B|`` and
  ``|A ∪ B|`` estimates.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from .base import (
    IncompatibleSynopsesError,
    SetSynopsis,
    UnsupportedOperationError,
)
from .hashing import ids_to_uint64_array, uniform_hash_array

__all__ = [
    "HashSketch",
    "PCSA_PHI",
    "cardinality_from_rho_sum",
    "rho_sum_cardinality_table",
    "pack_bitmap_row",
    "pack_bitmap_rows",
    "first_zero_positions",
]

#: Flajolet–Martin bias correction constant.
PCSA_PHI = 0.77351


def cardinality_from_rho_sum(rho_sum: int, num_bitmaps: int) -> float:
    """PCSA estimate from the *sum* of per-bucket ``R`` statistics.

    Same arithmetic as :meth:`HashSketch.estimate_cardinality` (which
    calls this), factored out so the vectorized routing kernels can
    tabulate it per integer ``ΣR`` and stay bit-identical to the scalar
    path.  Callers must handle the empty-sketch case themselves.
    """
    mean_r = rho_sum / num_bitmaps
    return (num_bitmaps / PCSA_PHI) * (2.0**mean_r)


def rho_sum_cardinality_table(num_bitmaps: int, bitmap_length: int) -> np.ndarray:
    """Estimates for every possible ``ΣR`` in ``0 .. m * L``."""
    return np.array(
        [
            cardinality_from_rho_sum(total, num_bitmaps)
            for total in range(num_bitmaps * bitmap_length + 1)
        ],
        dtype=np.float64,
    )


def pack_bitmap_row(synopsis: "HashSketch") -> np.ndarray:
    """One sketch's bucket bitmaps as a ``uint64`` row (requires L <= 64)."""
    return np.fromiter(
        synopsis._bitmaps, dtype=np.uint64, count=synopsis._num_bitmaps
    )


def pack_bitmap_rows(
    synopses: Sequence["HashSketch | None"], num_bitmaps: int
) -> np.ndarray:
    """Stack sketches into a ``(C, m)`` uint64 bitmap matrix.

    ``None`` entries become all-zero rows (the empty sketch) so row
    indices stay aligned with the candidate list.
    """
    rows = np.zeros((len(synopses), num_bitmaps), dtype=np.uint64)
    for index, synopsis in enumerate(synopses):
        if synopsis is not None:
            rows[index] = pack_bitmap_row(synopsis)
    return rows


def first_zero_positions(bitmaps: np.ndarray, bitmap_length: int) -> np.ndarray:
    """Vectorized :meth:`HashSketch._first_zero` over a bitmap array.

    The lowest unset bit of ``b`` is the lowest set bit of ``~b``;
    isolating it with ``x & -x`` gives an exact power of two whose
    ``log2`` (exact in float64 up to 2^63) is the position.  All-ones
    bitmaps yield ``bitmap_length``, matching the scalar cap.
    """
    mask = np.uint64((1 << bitmap_length) - 1)
    inverted = ~bitmaps & mask
    positions = np.full(bitmaps.shape, bitmap_length, dtype=np.int64)
    nonzero = inverted != 0
    lowest = inverted[nonzero]
    lowest = lowest & (np.uint64(0) - lowest)
    positions[nonzero] = np.log2(lowest.astype(np.float64)).astype(np.int64)
    return positions


def _rho(value: int, limit: int) -> int:
    """Position of the least significant 1-bit of ``value``, capped at limit.

    ``ρ(0)`` is defined as ``limit`` (the paper's ``ρ(0) = L``).
    """
    if value == 0:
        return limit
    return min((value & -value).bit_length() - 1, limit)


class HashSketch(SetSynopsis):
    """Immutable PCSA hash sketch.

    Parameters
    ----------
    num_bitmaps:
        Number of stochastic-averaging buckets ``m`` (a power of two is
        conventional but not required).
    bitmap_length:
        Bits per bitmap ``L``; caps the representable ``ρ`` values.
    seed:
        Hash seed shared network-wide.
    """

    __slots__ = ("_num_bitmaps", "_bitmap_length", "_seed", "_bitmaps", "_cardinality")

    def __init__(
        self,
        num_bitmaps: int,
        bitmap_length: int,
        seed: int = 0,
        bitmaps: Sequence[int] | None = None,
    ) -> None:
        if num_bitmaps <= 0:
            raise ValueError(f"num_bitmaps must be positive, got {num_bitmaps}")
        if bitmap_length <= 0:
            raise ValueError(f"bitmap_length must be positive, got {bitmap_length}")
        if bitmaps is None:
            bitmaps = (0,) * num_bitmaps
        if len(bitmaps) != num_bitmaps:
            raise ValueError(
                f"expected {num_bitmaps} bitmaps, got {len(bitmaps)}"
            )
        mask_limit = 1 << bitmap_length
        bad = [b for b in bitmaps if not 0 <= b < mask_limit]
        if bad:
            raise ValueError("bitmap payload exceeds bitmap_length")
        self._num_bitmaps = num_bitmaps
        self._bitmap_length = bitmap_length
        self._seed = seed
        self._bitmaps = tuple(int(b) for b in bitmaps)
        self._cardinality: float | None = None

    # -- construction ----------------------------------------------------

    @classmethod
    def from_ids(  # type: ignore[override]
        cls,
        ids: Iterable[int],
        *,
        num_bitmaps: int = 32,
        bitmap_length: int = 64,
        seed: int = 0,
    ) -> "HashSketch":
        """Build a sketch of ``ids``.

        Vectorized: hashes, bucket assignment, and the ρ (least
        significant 1-bit) computation all run as array operations; the
        result is bit-identical to scalar insertion via
        ``uniform_hash``/:func:`_rho`.
        """
        id_array = ids_to_uint64_array(ids)
        bitmaps = [0] * num_bitmaps
        if id_array.size:
            hashed = uniform_hash_array(id_array, seed)
            buckets = hashed % np.uint64(num_bitmaps)
            rest = hashed // np.uint64(num_bitmaps)
            # Least significant set bit: rest & (-rest) in wrapping uint64;
            # powers of two are exact in float64, so log2 recovers ρ.
            lsb = rest & (np.uint64(0) - rest)
            positions = np.full(rest.shape, bitmap_length - 1, dtype=np.int64)
            nonzero = rest != 0
            positions[nonzero] = np.log2(lsb[nonzero].astype(np.float64)).astype(
                np.int64
            )
            np.minimum(positions, bitmap_length - 1, out=positions)
            slots = np.unique(
                buckets.astype(np.int64) * bitmap_length + positions
            )
            for slot in slots.tolist():
                bitmaps[slot // bitmap_length] |= 1 << (slot % bitmap_length)
        return cls(num_bitmaps, bitmap_length, seed, bitmaps)

    def empty_like(self) -> "HashSketch":
        return HashSketch(self._num_bitmaps, self._bitmap_length, self._seed)

    # -- estimation ------------------------------------------------------

    def _first_zero(self, bitmap: int) -> int:
        """Index of the lowest unset bit (the PCSA ``R`` statistic)."""
        r = 0
        while (bitmap >> r) & 1 and r < self._bitmap_length:
            r += 1
        return r

    def estimate_cardinality(self) -> float:
        if self._cardinality is not None:
            return self._cardinality
        if self.is_empty:
            estimate = 0.0
        else:
            rho_sum = sum(self._first_zero(b) for b in self._bitmaps)
            estimate = cardinality_from_rho_sum(rho_sum, self._num_bitmaps)
        self._cardinality = estimate
        return estimate

    def estimate_resemblance(self, other: SetSynopsis) -> float:
        """Inclusion–exclusion resemblance from cardinality estimates."""
        self.check_compatible(other)
        assert isinstance(other, HashSketch)
        union_est = self.union(other).estimate_cardinality()
        if union_est <= 0.0:
            return 0.0
        card_a = self.estimate_cardinality()
        card_b = other.estimate_cardinality()
        intersection_est = max(0.0, card_a + card_b - union_est)
        return min(1.0, intersection_est / union_est)

    # -- aggregation -----------------------------------------------------

    def union(self, other: SetSynopsis) -> "HashSketch":
        """Exact union sketch: bitwise OR per bucket (Section 5.2)."""
        self.check_compatible(other)
        assert isinstance(other, HashSketch)
        merged = [a | b for a, b in zip(self._bitmaps, other._bitmaps)]
        return HashSketch(self._num_bitmaps, self._bitmap_length, self._seed, merged)

    def intersect(self, other: SetSynopsis) -> "HashSketch":
        """Unsupported — the paper knows no low-error HS intersection."""
        self.check_compatible(other)
        raise UnsupportedOperationError(
            "hash sketches do not support intersection aggregation "
            "(Section 3.4); use union as a crude superset, or switch to "
            "MIPs/Bloom synopses for conjunctive queries"
        )

    # -- bookkeeping -----------------------------------------------------

    @property
    def num_bitmaps(self) -> int:
        return self._num_bitmaps

    @property
    def bitmap_length(self) -> int:
        return self._bitmap_length

    @property
    def seed(self) -> int:
        return self._seed

    @property
    def bitmaps(self) -> tuple[int, ...]:
        return self._bitmaps

    @property
    def size_in_bits(self) -> int:
        return self._num_bitmaps * self._bitmap_length

    @property
    def is_empty(self) -> bool:
        return all(b == 0 for b in self._bitmaps)

    def check_compatible(self, other: SetSynopsis) -> None:
        super().check_compatible(other)
        assert isinstance(other, HashSketch)
        if (self._num_bitmaps, self._bitmap_length, self._seed) != (
            other._num_bitmaps,
            other._bitmap_length,
            other._seed,
        ):
            raise IncompatibleSynopsesError(
                "hash sketches require identical (num_bitmaps, bitmap_length, "
                f"seed): {(self._num_bitmaps, self._bitmap_length, self._seed)}"
                f" vs {(other._num_bitmaps, other._bitmap_length, other._seed)}"
            )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, HashSketch):
            return NotImplemented
        return (
            self._num_bitmaps == other._num_bitmaps
            and self._bitmap_length == other._bitmap_length
            and self._seed == other._seed
            and self._bitmaps == other._bitmaps
        )

    def __hash__(self) -> int:
        return hash(
            (self._num_bitmaps, self._bitmap_length, self._seed, self._bitmaps)
        )

    def __repr__(self) -> str:
        return (
            f"HashSketch(m={self._num_bitmaps}, L={self._bitmap_length}, "
            f"est={self.estimate_cardinality():.0f})"
        )
