"""Named synopsis configurations and a budget-aware factory.

The paper compares synopses under a common *bit budget* and refers to
configurations by short labels: "MIPs 64" (64 permutations = 2048 bits at
32 bits/minimum), "BF 2048" (a 2048-bit Bloom filter), "HSs 32" (32
Flajolet–Martin bitmaps of 64 bits = 2048 bits).  This module gives those
labels a canonical, parseable form — ``"mips-64"``, ``"bf-2048"``,
``"hs-32"`` — so experiments and the adaptive-budget allocator
(Section 7.2) can construct synopses uniformly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from .base import SetSynopsis
from .bloom import BloomFilter
from .hashsketch import HashSketch
from .loglog import REGISTER_BITS as LOGLOG_REGISTER_BITS
from .loglog import LogLogCounter
from .mips import BITS_PER_POSITION, MinWisePermutations

__all__ = ["SynopsisSpec", "KINDS"]

#: Recognized synopsis kinds: the three the paper studies (in the order
#: it introduces them) plus the LogLog counter it cites as the
#: space-improved successor of hash sketches [16].
KINDS = ("bloom", "hash-sketch", "mips", "loglog")

_DEFAULT_NUM_HASHES = 5
_DEFAULT_BITMAP_LENGTH = 64


@dataclass(frozen=True)
class SynopsisSpec:
    """A fully determined synopsis configuration.

    ``parameter`` is the kind-specific size knob: permutation count for
    MIPs, bit length for Bloom filters, bitmap count for hash sketches —
    matching the numeric part of the paper's labels.
    """

    kind: str
    parameter: int
    seed: int = 0
    num_hashes: int = _DEFAULT_NUM_HASHES
    bitmap_length: int = _DEFAULT_BITMAP_LENGTH

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(f"unknown synopsis kind {self.kind!r}; choose from {KINDS}")
        if self.parameter <= 0:
            raise ValueError(f"size parameter must be positive, got {self.parameter}")

    # -- parsing / formatting ---------------------------------------------

    @classmethod
    def parse(cls, label: str, *, seed: int = 0) -> "SynopsisSpec":
        """Parse ``"mips-64"``-style labels (case-insensitive).

        Accepted prefixes: ``mips``, ``bf``/``bloom``, ``hs``/``hash-sketch``.
        """
        text = label.strip().lower()
        prefix, _, number = text.rpartition("-")
        if not prefix or not number.isdigit():
            raise ValueError(
                f"cannot parse synopsis label {label!r}; expected e.g. 'mips-64'"
            )
        aliases = {
            "mips": "mips",
            "bf": "bloom",
            "bloom": "bloom",
            "hs": "hash-sketch",
            "hss": "hash-sketch",
            "hash-sketch": "hash-sketch",
            "ll": "loglog",
            "loglog": "loglog",
        }
        if prefix not in aliases:
            raise ValueError(f"unknown synopsis kind prefix {prefix!r} in {label!r}")
        return cls(kind=aliases[prefix], parameter=int(number), seed=seed)

    @classmethod
    def of(cls, synopsis: SetSynopsis) -> "SynopsisSpec":
        """Recover the configuration a concrete synopsis was built with.

        Every family's parameters are readable from the instance, so a
        deserialized synopsis can be matched back to a spec (used by the
        histogram wire format and by diagnostics).
        """
        if isinstance(synopsis, MinWisePermutations):
            return cls(
                kind="mips",
                parameter=synopsis.num_permutations,
                seed=synopsis.seed,
            )
        if isinstance(synopsis, BloomFilter):
            return cls(
                kind="bloom",
                parameter=synopsis.num_bits,
                seed=synopsis.seed,
                num_hashes=synopsis.num_hashes,
            )
        if isinstance(synopsis, HashSketch):
            return cls(
                kind="hash-sketch",
                parameter=synopsis.num_bitmaps,
                seed=synopsis.seed,
                bitmap_length=synopsis.bitmap_length,
            )
        if isinstance(synopsis, LogLogCounter):
            return cls(
                kind="loglog",
                parameter=synopsis.num_buckets,
                seed=synopsis.seed,
            )
        raise ValueError(
            f"cannot derive a spec from {type(synopsis).__name__}"
        )

    @classmethod
    def for_budget(cls, kind: str, budget_bits: int, *, seed: int = 0) -> "SynopsisSpec":
        """Largest configuration of ``kind`` fitting in ``budget_bits``.

        This is the equal-budget comparison rule of Section 3.3 ("we
        restricted all techniques to a synopsis size of 2,048 bits, and
        from this space constraint we derived the parameters").
        """
        if budget_bits <= 0:
            raise ValueError(f"budget_bits must be positive, got {budget_bits}")
        if kind == "mips":
            parameter = max(1, budget_bits // BITS_PER_POSITION)
        elif kind == "bloom":
            parameter = budget_bits
        elif kind == "hash-sketch":
            parameter = max(1, budget_bits // _DEFAULT_BITMAP_LENGTH)
        elif kind == "loglog":
            parameter = max(1, budget_bits // LOGLOG_REGISTER_BITS)
        else:
            raise ValueError(f"unknown synopsis kind {kind!r}; choose from {KINDS}")
        return cls(kind=kind, parameter=parameter, seed=seed)

    @property
    def label(self) -> str:
        """Paper-style display label, e.g. ``"MIPs 64"``."""
        names = {
            "mips": "MIPs",
            "bloom": "BF",
            "hash-sketch": "HSs",
            "loglog": "LL",
        }
        return f"{names[self.kind]} {self.parameter}"

    @property
    def size_in_bits(self) -> int:
        """Wire size of synopses this spec builds."""
        if self.kind == "mips":
            return self.parameter * BITS_PER_POSITION
        if self.kind == "bloom":
            return self.parameter
        if self.kind == "loglog":
            return self.parameter * LOGLOG_REGISTER_BITS
        return self.parameter * self.bitmap_length

    # -- construction -----------------------------------------------------

    def build(self, ids: Iterable[int]) -> SetSynopsis:
        """Construct a synopsis of ``ids`` per this configuration."""
        if self.kind == "mips":
            return MinWisePermutations.from_ids(
                ids, num_permutations=self.parameter, seed=self.seed
            )
        if self.kind == "bloom":
            return BloomFilter.from_ids(
                ids, num_bits=self.parameter, num_hashes=self.num_hashes, seed=self.seed
            )
        if self.kind == "loglog":
            return LogLogCounter.from_ids(
                ids, num_buckets=self.parameter, seed=self.seed
            )
        return HashSketch.from_ids(
            ids,
            num_bitmaps=self.parameter,
            bitmap_length=self.bitmap_length,
            seed=self.seed,
        )

    def empty(self) -> SetSynopsis:
        """An empty synopsis of this configuration (IQN's initial reference)."""
        return self.build(())

    def resized(self, parameter: int) -> "SynopsisSpec":
        """Copy of this spec with a different size parameter.

        Used by the Section 7.2 budget allocator, which assigns each term
        its own synopsis length.
        """
        return SynopsisSpec(
            kind=self.kind,
            parameter=parameter,
            seed=self.seed,
            num_hashes=self.num_hashes,
            bitmap_length=self.bitmap_length,
        )

    @property
    def supports_heterogeneous_sizes(self) -> bool:
        """True for MIPs only (Section 3.4's fourth criterion)."""
        return self.kind == "mips"

    @property
    def supports_intersection(self) -> bool:
        """True unless the kind is a cardinality-only counter family
        (hash sketches and LogLog, Section 3.4)."""
        return self.kind not in ("hash-sketch", "loglog")
