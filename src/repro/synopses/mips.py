"""Min-wise independent permutations (Broder et al.) as collection synopses.

A MIPs synopsis stores, for each of ``N`` shared random linear
permutations ``h_i(x) = (a_i x + b_i) mod U``, the minimum permuted value
over the summarized set (Figure 1 of the paper).  Its key properties:

- **Resemblance** ``|A ∩ B| / |A ∪ B|`` is estimated *unbiasedly* by the
  fraction of vector positions where two synopses agree, because under a
  random permutation every element of ``A ∪ B`` is equally likely to be
  the minimum, and the minima agree exactly when that element lies in
  ``A ∩ B``.
- **Union** is exact on the synopsis level: position-wise minimum.
- **Intersection** has a conservative heuristic: position-wise maximum
  (Section 6.1 — the true minimum over ``A ∩ B`` can be no smaller than
  the max of the two per-set minima).
- **Heterogeneous lengths** work: two vectors built from the same hash
  family are comparable on their common prefix of permutations
  (Section 5.3), the property that distinguishes MIPs from Bloom filters
  and hash sketches in a loosely coupled P2P network.

Implementation notes
--------------------
Building a synopsis evaluates ``N`` linear hashes over the whole id set;
we vectorize this with NumPy.  To keep ``a * x + b`` inside unsigned
64-bit arithmetic we first scramble ids with SplitMix64 and fold them to
31 bits, then permute within ``Z_p`` for the Mersenne prime
``p = 2^31 - 1``.  The 31-bit fold introduces a ~``n^2 / 2^32`` chance of
id collisions, which is far below the sketch's own estimation error for
the collection sizes of interest (up to a few million).

Positions never touched (empty set) hold the sentinel value ``p`` itself,
which is one larger than any achievable hash and is the neutral element
of the position-wise ``min``.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from .base import IncompatibleSynopsesError, SetSynopsis
from .hashing import LinearHashFamily, ids_to_uint64_array

__all__ = [
    "MinWisePermutations",
    "MIPS_MODULUS",
    "BITS_PER_POSITION",
    "pack_minima_row",
    "pack_minima_rows",
    "batch_match_counts",
]

#: Modulus of the MIPs permutation family: the Mersenne prime 2^31 - 1.
MIPS_MODULUS = (1 << 31) - 1

#: Wire width we account per stored minimum.  The paper equates 64
#: permutations with 2048 bits, i.e. 32 bits per position.
BITS_PER_POSITION = 32

_FAMILY_CACHE: dict[int, LinearHashFamily] = {}


def _family(seed: int) -> LinearHashFamily:
    """Return the (process-wide) permutation family for ``seed``.

    The family is the paper's "same sequence of hash functions" that all
    peers agree on; caching it makes repeated synopsis construction cheap
    and guarantees identical permutations across peers in one simulation.
    """
    family = _FAMILY_CACHE.get(seed)
    if family is None:
        family = LinearHashFamily(seed=seed, modulus=MIPS_MODULUS)
        _FAMILY_CACHE[seed] = family
    return family


def pack_minima_row(synopsis: "MinWisePermutations") -> np.ndarray:
    """One MIPs vector as an ``int64`` row (sentinel ``p`` for empties)."""
    return np.fromiter(
        synopsis._minima, dtype=np.int64, count=len(synopsis._minima)
    )


def pack_minima_rows(
    synopses: Sequence["MinWisePermutations | None"], num_permutations: int
) -> np.ndarray:
    """Stack MIPs vectors into a ``(C, N)`` int64 matrix.

    ``None`` entries become all-sentinel rows (the empty synopsis), so
    row indices stay aligned with the candidate list.
    """
    rows = np.full((len(synopses), num_permutations), MIPS_MODULUS, dtype=np.int64)
    for index, synopsis in enumerate(synopses):
        if synopsis is not None:
            rows[index] = pack_minima_row(synopsis)
    return rows


def batch_match_counts(rows: np.ndarray, reference_row: np.ndarray) -> np.ndarray:
    """Per-row count of positions matching the reference (sentinels excluded).

    Vectorized core of :meth:`MinWisePermutations.estimate_resemblance`:
    ``matches / N`` is the resemblance estimate, so one pass over the
    matrix replaces C Python-level zip loops.
    """
    return ((rows == reference_row) & (reference_row != MIPS_MODULUS)).sum(
        axis=1, dtype=np.int64
    )


def _scramble_to_31_bits(ids: np.ndarray) -> np.ndarray:
    """SplitMix64-mix ``ids`` (uint64) and keep the top 31 bits."""
    x = ids + np.uint64(0x9E3779B97F4A7C15)
    x = (x ^ (x >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)
    x = (x ^ (x >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)
    x = x ^ (x >> np.uint64(31))
    return x >> np.uint64(33)


class MinWisePermutations(SetSynopsis):
    """Immutable MIPs vector of ``num_permutations`` minima."""

    __slots__ = ("_minima", "_seed", "_cardinality")

    def __init__(self, minima: Sequence[int], seed: int = 0) -> None:
        if len(minima) == 0:
            raise ValueError("a MIPs synopsis needs at least one permutation")
        bad = [m for m in minima if not 0 <= m <= MIPS_MODULUS]
        if bad:
            raise ValueError(f"minima out of range [0, {MIPS_MODULUS}]: {bad[:3]}")
        self._minima = tuple(int(m) for m in minima)
        self._seed = seed
        self._cardinality: float | None = None

    # -- construction ----------------------------------------------------

    @classmethod
    def from_ids(  # type: ignore[override]
        cls,
        ids: Iterable[int],
        *,
        num_permutations: int = 64,
        seed: int = 0,
    ) -> "MinWisePermutations":
        """Build a MIPs vector over ``ids`` with ``num_permutations`` hashes."""
        if num_permutations <= 0:
            raise ValueError(
                f"num_permutations must be positive, got {num_permutations}"
            )
        id_array = ids_to_uint64_array(ids)
        if id_array.size == 0:
            return cls([MIPS_MODULUS] * num_permutations, seed)
        keys = _scramble_to_31_bits(id_array)
        permutations = _family(seed).permutations(num_permutations)
        coeff_a = np.array([p.a for p in permutations], dtype=np.uint64)
        coeff_b = np.array([p.b for p in permutations], dtype=np.uint64)
        # (N, n) matrix of permuted values; a*key < 2^62 so uint64 is exact.
        permuted = (coeff_a[:, None] * keys[None, :] + coeff_b[:, None]) % np.uint64(
            MIPS_MODULUS
        )
        return cls(permuted.min(axis=1).tolist(), seed)

    def empty_like(self) -> "MinWisePermutations":
        return MinWisePermutations([MIPS_MODULUS] * len(self._minima), self._seed)

    # -- estimation ------------------------------------------------------

    def estimate_resemblance(self, other: SetSynopsis) -> float:
        """Fraction of agreeing positions over the common prefix."""
        self.check_compatible(other)
        assert isinstance(other, MinWisePermutations)
        common = min(len(self._minima), len(other._minima))
        if self.is_empty or other.is_empty:
            return 0.0
        matches = sum(
            1
            for a, b in zip(self._minima[:common], other._minima[:common])
            if a == b and a != MIPS_MODULUS
        )
        return matches / common

    def estimate_cardinality(self) -> float:
        """Order-statistics cardinality estimate from the minima.

        Each minimum of ``n`` i.i.d. uniforms on ``[0, p)`` has expectation
        ``p / (n + 1)``, so ``n ≈ N / sum(min_i / p) - 1``.  Far noisier
        than the resemblance estimator — MINERVA posts carry exact index
        list lengths — but available when only the synopsis survives.
        """
        if self._cardinality is not None:
            return self._cardinality
        if self.is_empty:
            estimate = 0.0
        else:
            total = sum(m / MIPS_MODULUS for m in self._minima)
            estimate = (
                float("inf")
                if total <= 0.0
                else max(0.0, len(self._minima) / total - 1.0)
            )
        self._cardinality = estimate
        return estimate

    @property
    def distinct_fraction(self) -> float:
        """Fraction of distinct values among the stored minima.

        The paper (Section 3.2) notes this ratio on an aggregated vector
        gives a (biased) estimate related to the aggregate's cardinality.
        """
        filled = [m for m in self._minima if m != MIPS_MODULUS]
        if not filled:
            return 0.0
        return len(set(filled)) / len(self._minima)

    # -- aggregation -----------------------------------------------------

    def union(self, other: SetSynopsis) -> "MinWisePermutations":
        """Position-wise minimum over the common permutation prefix."""
        self.check_compatible(other)
        assert isinstance(other, MinWisePermutations)
        common = min(len(self._minima), len(other._minima))
        merged = [
            min(a, b) for a, b in zip(self._minima[:common], other._minima[:common])
        ]
        return MinWisePermutations(merged, self._seed)

    def intersect(self, other: SetSynopsis) -> "MinWisePermutations":
        """Conservative position-wise maximum heuristic (Section 6.1)."""
        self.check_compatible(other)
        assert isinstance(other, MinWisePermutations)
        common = min(len(self._minima), len(other._minima))
        merged = [
            max(a, b) for a, b in zip(self._minima[:common], other._minima[:common])
        ]
        return MinWisePermutations(merged, self._seed)

    # -- bookkeeping -----------------------------------------------------

    @property
    def minima(self) -> tuple[int, ...]:
        return self._minima

    @property
    def num_permutations(self) -> int:
        return len(self._minima)

    @property
    def seed(self) -> int:
        return self._seed

    @property
    def size_in_bits(self) -> int:
        return BITS_PER_POSITION * len(self._minima)

    @property
    def is_empty(self) -> bool:
        return all(m == MIPS_MODULUS for m in self._minima)

    def check_compatible(self, other: SetSynopsis) -> None:
        super().check_compatible(other)
        assert isinstance(other, MinWisePermutations)
        if self._seed != other._seed:
            raise IncompatibleSynopsesError(
                f"MIPs hash-family seeds differ: {self._seed} vs {other._seed}"
            )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MinWisePermutations):
            return NotImplemented
        return self._seed == other._seed and self._minima == other._minima

    def __hash__(self) -> int:
        return hash((self._seed, self._minima))

    def __repr__(self) -> str:
        return (
            f"MinWisePermutations(N={len(self._minima)}, seed={self._seed}, "
            f"empty={self.is_empty})"
        )
