"""Set-correlation measures of Section 3.1 and their algebra.

Exact, set-based definitions used as ground truth in tests and
experiments, plus the closed-form conversions between resemblance,
containment, overlap, and the paper's proposed *novelty*::

    Containment(A, B) = |A ∩ B| / |B|
    Resemblance(A, B) = |A ∩ B| / |A ∪ B|
    Novelty(B | A)    = |B - (A ∩ B)| = |B| - |A ∩ B|

Given ``|A|``, ``|B|`` and either resemblance or containment, the others
follow (Section 3.1 cites [11] for this) — the conversions implemented
here are exactly the ones IQN uses to turn a synopsis's resemblance
estimate into a novelty estimate (Section 5.2)::

    |A ∩ B| = R * (|A| + |B|) / (R + 1)
"""

from __future__ import annotations

from typing import AbstractSet

__all__ = [
    "overlap",
    "containment",
    "resemblance",
    "novelty",
    "overlap_from_resemblance",
    "overlap_from_containment",
    "resemblance_from_containment",
    "containment_from_resemblance",
    "novelty_from_resemblance",
    "novelty_from_union",
]


# -- exact, set-based ground truth ----------------------------------------


def overlap(set_a: AbstractSet[int], set_b: AbstractSet[int]) -> int:
    """Exact overlap ``|A ∩ B|``."""
    if len(set_b) < len(set_a):
        set_a, set_b = set_b, set_a
    return len(set_a & set_b)


def containment(set_a: AbstractSet[int], set_b: AbstractSet[int]) -> float:
    """Exact containment ``|A ∩ B| / |B|`` — the fraction of B known to A.

    Defined as 0 for empty ``B`` (nothing to contain).
    """
    if not set_b:
        return 0.0
    return overlap(set_a, set_b) / len(set_b)


def resemblance(set_a: AbstractSet[int], set_b: AbstractSet[int]) -> float:
    """Exact Broder resemblance ``|A ∩ B| / |A ∪ B|`` (0 for two empties)."""
    union_size = len(set_a | set_b)
    if union_size == 0:
        return 0.0
    return overlap(set_a, set_b) / union_size


def novelty(set_b: AbstractSet[int], set_a: AbstractSet[int]) -> int:
    """Exact ``Novelty(B | A) = |B - (A ∩ B)|`` — what B adds beyond A.

    Note the argument order mirrors the paper's conditional notation:
    the *first* argument is the candidate ``B``, the second the already
    covered reference ``A``.
    """
    return len(set_b - set_a)


# -- conversions between measures (Section 3.1 / 5.2) ----------------------


def overlap_from_resemblance(res: float, card_a: float, card_b: float) -> float:
    """Recover ``|A ∩ B|`` from resemblance and both cardinalities.

    From ``R = i / (|A| + |B| - i)`` solve ``i = R (|A| + |B|) / (R + 1)``.
    The result is clamped to the feasible range ``[0, min(|A|, |B|)]`` to
    absorb estimator noise.
    """
    _check_probability("resemblance", res)
    _check_cardinality(card_a)
    _check_cardinality(card_b)
    estimate = res * (card_a + card_b) / (res + 1.0)
    return min(max(estimate, 0.0), min(card_a, card_b))


def overlap_from_containment(cont: float, card_b: float) -> float:
    """Recover ``|A ∩ B|`` from ``Containment(A, B)`` and ``|B|``."""
    _check_probability("containment", cont)
    _check_cardinality(card_b)
    return cont * card_b


def resemblance_from_containment(
    cont: float, card_a: float, card_b: float
) -> float:
    """Convert containment to resemblance given both cardinalities."""
    inter = overlap_from_containment(cont, card_b)
    union_size = card_a + card_b - inter
    if union_size <= 0.0:
        return 0.0
    return min(1.0, inter / union_size)


def containment_from_resemblance(
    res: float, card_a: float, card_b: float
) -> float:
    """Convert resemblance to containment given both cardinalities."""
    if card_b <= 0.0:
        return 0.0
    return min(1.0, overlap_from_resemblance(res, card_a, card_b) / card_b)


def novelty_from_resemblance(res: float, card_ref: float, card_cand: float) -> float:
    """Novelty of the candidate from a resemblance estimate (Section 5.2).

    ``Novelty(B | A) = |B| - |A ∩ B|`` with the overlap recovered via
    :func:`overlap_from_resemblance`.  ``card_ref`` is ``|A|`` (reference,
    already covered) and ``card_cand`` is ``|B|`` (candidate).
    """
    inter = overlap_from_resemblance(res, card_ref, card_cand)
    return max(0.0, card_cand - inter)


def novelty_from_union(
    union_cardinality: float, card_ref: float, card_cand: float
) -> float:
    """Novelty from a union-cardinality estimate (hash-sketch path).

    Using ``|A ∩ B| = |A| + |B| - |A ∪ B|``, novelty simplifies to
    ``|A ∪ B| - |A|``, clamped to ``[0, |B|]``.
    """
    _check_cardinality(card_ref)
    _check_cardinality(card_cand)
    if union_cardinality < 0.0:
        raise ValueError(f"union cardinality must be >= 0, got {union_cardinality}")
    return min(max(0.0, union_cardinality - card_ref), card_cand)


def _check_probability(name: str, value: float) -> None:
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value}")


def _check_cardinality(value: float) -> None:
    if value < 0.0:
        raise ValueError(f"cardinality must be >= 0, got {value}")
