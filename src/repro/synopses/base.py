"""Common interface for compact set synopses.

The paper evaluates three synopsis families — Bloom filters, hash
sketches, and min-wise independent permutations — against four criteria
(Section 3.4): estimation error, space, aggregability (union /
intersection / difference), and tolerance of heterogeneous sizes.  This
module pins down the shared contract so that routing code (``repro.core``)
is generic over the synopsis type.

Synopses are **immutable value objects**: every aggregation operation
returns a new instance.  IQN's Aggregate-Synopses step only ever combines
two synopses at a time, so a small, pure API suffices.
"""

from __future__ import annotations

import abc
from typing import Any, Iterable

__all__ = [
    "SynopsisError",
    "IncompatibleSynopsesError",
    "UnsupportedOperationError",
    "SetSynopsis",
]


class SynopsisError(Exception):
    """Base class for synopsis-related failures."""


class IncompatibleSynopsesError(SynopsisError):
    """Raised when two synopses cannot be combined.

    Typical causes: different hash-family seeds, or fixed-size structures
    (Bloom filters, hash sketches) of different bit lengths — the paper
    notes these families *require* globally agreed sizes, unlike MIPs.
    """


class UnsupportedOperationError(SynopsisError):
    """Raised when a synopsis family lacks an aggregation operation.

    For example, hash sketches have no known low-error intersection
    (Section 3.4), which matters for conjunctive multi-keyword queries.
    """


class SetSynopsis(abc.ABC):
    """A compact, mergeable summary of a set of integer document ids.

    Implementations must be hashable per identity of their parameters and
    must never mutate in place after construction.
    """

    __slots__ = ()

    # -- construction ----------------------------------------------------

    @classmethod
    @abc.abstractmethod
    def from_ids(cls, ids: Iterable[int], **params: Any) -> "SetSynopsis":
        """Build a synopsis summarizing ``ids``."""

    @abc.abstractmethod
    def empty_like(self) -> "SetSynopsis":
        """Return an empty synopsis with the same parameters as ``self``.

        IQN seeds the reference synopsis from the initiator's local
        result; when that result is empty this provides a neutral element
        for the union aggregation.
        """

    # -- estimation ------------------------------------------------------

    @abc.abstractmethod
    def estimate_cardinality(self) -> float:
        """Estimate the number of distinct elements summarized."""

    @abc.abstractmethod
    def estimate_resemblance(self, other: "SetSynopsis") -> float:
        """Estimate Broder resemblance ``|A ∩ B| / |A ∪ B|`` in [0, 1]."""

    # -- aggregation (Section 5.3 / Section 6) ---------------------------

    @abc.abstractmethod
    def union(self, other: "SetSynopsis") -> "SetSynopsis":
        """Return a synopsis approximating the union of both sets."""

    @abc.abstractmethod
    def intersect(self, other: "SetSynopsis") -> "SetSynopsis":
        """Return a synopsis approximating the intersection of both sets.

        May raise :class:`UnsupportedOperationError` (hash sketches).
        """

    # -- bookkeeping ------------------------------------------------------

    @property
    @abc.abstractmethod
    def size_in_bits(self) -> int:
        """Wire size of the synopsis payload in bits.

        Used by the network cost model and by the adaptive length
        allocator of Section 7.2.
        """

    @property
    @abc.abstractmethod
    def is_empty(self) -> bool:
        """True when no element has been added."""

    def check_compatible(self, other: "SetSynopsis") -> None:
        """Raise :class:`IncompatibleSynopsesError` unless combinable.

        The default implementation only checks the types match; concrete
        classes extend it with parameter checks (seed, length, ...).
        """
        if type(self) is not type(other):
            raise IncompatibleSynopsesError(
                f"cannot combine {type(self).__name__} with {type(other).__name__}"
            )
