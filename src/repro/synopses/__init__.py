"""Compact set synopses (Section 3): Bloom filters, hash sketches, MIPs.

The public surface of this package is:

- :class:`~repro.synopses.base.SetSynopsis` — the shared interface;
- the three concrete families the paper studies;
- :class:`~repro.synopses.factory.SynopsisSpec` — named, budget-aware
  configurations ("mips-64", "bf-2048", "hs-32");
- exact set measures and their estimator algebra
  (:mod:`repro.synopses.measures`);
- :class:`~repro.synopses.histogram.ScoreHistogramSynopsis` — the
  score-conscious composite of Section 7.1.
"""

from .base import (
    IncompatibleSynopsesError,
    SetSynopsis,
    SynopsisError,
    UnsupportedOperationError,
)
from .bloom import BloomFilter, optimal_num_hashes
from .factory import KINDS, SynopsisSpec
from .hashing import LinearHashFamily, LinearPermutation, splitmix64, uniform_hash
from .hashsketch import HashSketch
from .loglog import LOGLOG_ALPHA, LogLogCounter
from .histogram import ScoreHistogramSynopsis, cell_index
from .measures import (
    containment,
    containment_from_resemblance,
    novelty,
    novelty_from_resemblance,
    novelty_from_union,
    overlap,
    overlap_from_containment,
    overlap_from_resemblance,
    resemblance,
    resemblance_from_containment,
)
from .mips import BITS_PER_POSITION, MIPS_MODULUS, MinWisePermutations
from .wire import WireFormatError, dumps, loads

__all__ = [
    "SetSynopsis",
    "SynopsisError",
    "IncompatibleSynopsesError",
    "UnsupportedOperationError",
    "BloomFilter",
    "optimal_num_hashes",
    "HashSketch",
    "LogLogCounter",
    "LOGLOG_ALPHA",
    "MinWisePermutations",
    "MIPS_MODULUS",
    "BITS_PER_POSITION",
    "ScoreHistogramSynopsis",
    "cell_index",
    "SynopsisSpec",
    "KINDS",
    "LinearHashFamily",
    "LinearPermutation",
    "splitmix64",
    "uniform_hash",
    "overlap",
    "containment",
    "resemblance",
    "novelty",
    "overlap_from_resemblance",
    "overlap_from_containment",
    "resemblance_from_containment",
    "containment_from_resemblance",
    "novelty_from_resemblance",
    "novelty_from_union",
    "dumps",
    "loads",
    "WireFormatError",
]
