"""Wire (de)serialization for synopses.

MINERVA peers ship synopses inside Posts; a real deployment needs a
compact, self-describing byte format.  The format here is deliberately
simple and versionless-stable:

``[1 byte kind][header varints...][payload bytes]``

- Bloom filter: kind 0x01, header ``(num_bits, num_hashes, seed)``,
  payload = ceil(num_bits / 8) little-endian bitmap bytes.
- Hash sketch: kind 0x02, header ``(num_bitmaps, bitmap_length, seed)``,
  payload = bitmaps, each ceil(bitmap_length / 8) bytes.
- MIPs: kind 0x03, header ``(num_permutations, seed)``, payload = 4-byte
  little-endian minima (31-bit values + the sentinel fit in 4 bytes).
- LogLog counter: kind 0x04, header ``(num_buckets, seed)``, payload =
  one byte per 5-bit register (wire simplicity beats bit packing here;
  ``size_in_bits`` still reports the packed 5-bit budget the estimator
  needs).

Integers in headers use unsigned LEB128 varints; seeds are zigzag-coded
so negative seeds survive.  ``loads`` dispatches on the kind byte.

The byte lengths agree with each synopsis's ``size_in_bits`` accounting
up to byte-rounding plus the small header, so the cost model's numbers
track real wire sizes.
"""

from __future__ import annotations

import struct

from .base import SetSynopsis, SynopsisError
from .bloom import BloomFilter
from .factory import SynopsisSpec
from .hashsketch import HashSketch
from .histogram import ScoreHistogramSynopsis
from .loglog import LogLogCounter
from .mips import MIPS_MODULUS, MinWisePermutations

__all__ = ["dumps", "loads", "WireFormatError"]

_KIND_BLOOM = 0x01
_KIND_HASH_SKETCH = 0x02
_KIND_MIPS = 0x03
_KIND_LOGLOG = 0x04
_KIND_HISTOGRAM = 0x05


class WireFormatError(SynopsisError):
    """Raised on malformed or truncated synopsis bytes."""


# -- varint helpers ----------------------------------------------------------


def _write_uvarint(value: int, out: bytearray) -> None:
    if value < 0:
        raise ValueError(f"uvarint requires value >= 0, got {value}")
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


def _read_uvarint(data: bytes, offset: int) -> tuple[int, int]:
    result = 0
    shift = 0
    while True:
        if offset >= len(data):
            raise WireFormatError("truncated varint")
        byte = data[offset]
        offset += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, offset
        shift += 7
        if shift > 70:
            raise WireFormatError("varint too long")


def _zigzag(value: int) -> int:
    return (value << 1) ^ (value >> 63) if value >= 0 else ((-value) << 1) - 1


def _unzigzag(value: int) -> int:
    return (value >> 1) if not value & 1 else -((value + 1) >> 1)


# -- serialization ------------------------------------------------------------


def dumps(synopsis: "SetSynopsis | ScoreHistogramSynopsis") -> bytes:
    """Serialize any supported synopsis (or histogram composite) to bytes."""
    out = bytearray()
    if isinstance(synopsis, BloomFilter):
        out.append(_KIND_BLOOM)
        _write_uvarint(synopsis.num_bits, out)
        _write_uvarint(synopsis.num_hashes, out)
        _write_uvarint(_zigzag(synopsis.seed), out)
        payload_len = (synopsis.num_bits + 7) // 8
        out += synopsis._bits.to_bytes(payload_len, "little")
    elif isinstance(synopsis, HashSketch):
        out.append(_KIND_HASH_SKETCH)
        _write_uvarint(synopsis.num_bitmaps, out)
        _write_uvarint(synopsis.bitmap_length, out)
        _write_uvarint(_zigzag(synopsis.seed), out)
        bitmap_bytes = (synopsis.bitmap_length + 7) // 8
        for bitmap in synopsis.bitmaps:
            out += bitmap.to_bytes(bitmap_bytes, "little")
    elif isinstance(synopsis, MinWisePermutations):
        out.append(_KIND_MIPS)
        _write_uvarint(synopsis.num_permutations, out)
        _write_uvarint(_zigzag(synopsis.seed), out)
        for minimum in synopsis.minima:
            out += minimum.to_bytes(4, "little")
    elif isinstance(synopsis, LogLogCounter):
        out.append(_KIND_LOGLOG)
        _write_uvarint(synopsis.num_buckets, out)
        _write_uvarint(_zigzag(synopsis.seed), out)
        out += bytes(synopsis.registers)  # 5-bit values, one byte each
    elif isinstance(synopsis, ScoreHistogramSynopsis):
        out.append(_KIND_HISTOGRAM)
        _write_uvarint(synopsis.num_cells, out)
        for cell, cardinality in zip(synopsis.cells, synopsis.cell_cardinalities):
            out += struct.pack("<d", cardinality)
            payload = dumps(cell)
            _write_uvarint(len(payload), out)
            out += payload
    else:
        raise WireFormatError(
            f"no wire format for synopsis type {type(synopsis).__name__}"
        )
    return bytes(out)


def loads(data: bytes) -> "SetSynopsis | ScoreHistogramSynopsis":
    """Reconstruct a synopsis serialized by :func:`dumps`."""
    if not data:
        raise WireFormatError("empty payload")
    kind = data[0]
    offset = 1
    if kind == _KIND_BLOOM:
        num_bits, offset = _read_uvarint(data, offset)
        num_hashes, offset = _read_uvarint(data, offset)
        zz_seed, offset = _read_uvarint(data, offset)
        payload_len = (num_bits + 7) // 8
        payload = _take(data, offset, payload_len)
        return BloomFilter(
            num_bits,
            num_hashes,
            _unzigzag(zz_seed),
            int.from_bytes(payload, "little"),
        )
    if kind == _KIND_HASH_SKETCH:
        num_bitmaps, offset = _read_uvarint(data, offset)
        bitmap_length, offset = _read_uvarint(data, offset)
        zz_seed, offset = _read_uvarint(data, offset)
        bitmap_bytes = (bitmap_length + 7) // 8
        bitmaps = []
        for _ in range(num_bitmaps):
            chunk = _take(data, offset, bitmap_bytes)
            offset += bitmap_bytes
            bitmaps.append(int.from_bytes(chunk, "little"))
        return HashSketch(num_bitmaps, bitmap_length, _unzigzag(zz_seed), bitmaps)
    if kind == _KIND_MIPS:
        count, offset = _read_uvarint(data, offset)
        zz_seed, offset = _read_uvarint(data, offset)
        minima = []
        for _ in range(count):
            chunk = _take(data, offset, 4)
            offset += 4
            value = int.from_bytes(chunk, "little")
            if value > MIPS_MODULUS:
                raise WireFormatError(f"MIPs minimum out of range: {value}")
            minima.append(value)
        return MinWisePermutations(minima, _unzigzag(zz_seed))
    if kind == _KIND_LOGLOG:
        count, offset = _read_uvarint(data, offset)
        zz_seed, offset = _read_uvarint(data, offset)
        payload = _take(data, offset, count)
        return LogLogCounter(count, _unzigzag(zz_seed), list(payload))
    if kind == _KIND_HISTOGRAM:
        num_cells, offset = _read_uvarint(data, offset)
        if num_cells == 0:
            raise WireFormatError("histogram must have at least one cell")
        cells: list[SetSynopsis] = []
        cardinalities = []
        for _ in range(num_cells):
            chunk = _take(data, offset, 8)
            offset += 8
            cardinalities.append(struct.unpack("<d", chunk)[0])
            length, offset = _read_uvarint(data, offset)
            payload = _take(data, offset, length)
            offset += length
            cell = loads(payload)
            if isinstance(cell, ScoreHistogramSynopsis):
                raise WireFormatError("histogram cells cannot nest histograms")
            cells.append(cell)
        spec = SynopsisSpec.of(cells[0])
        return ScoreHistogramSynopsis(
            cells=tuple(cells),
            cell_cardinalities=tuple(cardinalities),
            spec=spec,
        )
    raise WireFormatError(f"unknown synopsis kind byte 0x{kind:02x}")


def _take(data: bytes, offset: int, length: int) -> bytes:
    chunk = data[offset : offset + length]
    if len(chunk) != length:
        raise WireFormatError(
            f"truncated payload: wanted {length} bytes at offset {offset}, "
            f"got {len(chunk)}"
        )
    return chunk
