"""Bloom filters (Bloom 1970) as P2P collection synopses.

A Bloom filter represents a set as an ``m``-bit vector written by ``k``
independent hash probes per element.  The paper (Section 3.2) uses them
for membership, cardinality estimation from the fill ratio, and cheap
aggregation: union = bitwise OR, intersection = bitwise AND, and — for
novelty (Section 5.2) — a bitwise set difference ``bf_p AND NOT bf_ref``.

Cardinality inversion
---------------------
With ``n`` distinct insertions the probability a given bit is still zero
is ``(1 - 1/m)^{kn}``, so the expected number of set bits is
``E = m * (1 - (1 - 1/m)^{kn})``.  Solving exactly for ``n``::

    n = ln(1 - t/m) / (k * ln(1 - 1/m))      with t = observed set bits

The paper mentions Taylor approximations of this inversion; we use the
exact closed form (the "linear counting" estimator generalized to k
probes), which is strictly more accurate and just as cheap.

The bit vector is stored as a single arbitrary-precision integer, which
makes the bitwise aggregations one machine-optimized operation each and
keeps the object immutable and hashable.
"""

from __future__ import annotations

import math
from typing import Iterable

import numpy as np

from .base import IncompatibleSynopsesError, SetSynopsis
from .hashing import ids_to_uint64_array, uniform_hash, uniform_hash_array

__all__ = [
    "BloomFilter",
    "optimal_num_hashes",
    "cardinality_from_popcount",
    "popcount_cardinality_table",
    "pack_bit_row",
    "pack_bit_rows",
    "batch_difference_popcounts",
]


def optimal_num_hashes(num_bits: int, expected_items: int) -> int:
    """Return the false-positive-minimizing probe count ``k = m/n * ln 2``.

    Falls back to 1 when the filter is overloaded (``n >= m``), which is
    exactly the regime the paper shows Bloom filters degrading in
    (Figure 2: "BF 2048 ... overloaded").
    """
    if num_bits <= 0:
        raise ValueError(f"num_bits must be positive, got {num_bits}")
    if expected_items <= 0:
        return 1
    return max(1, round(num_bits / expected_items * math.log(2)))


def cardinality_from_popcount(bit_count: int, num_bits: int, num_hashes: int) -> float:
    """Invert the fill ratio ``t/m`` to a cardinality estimate.

    Single source of truth for the linear-counting inversion: both
    :meth:`BloomFilter.estimate_cardinality` and the vectorized routing
    kernels (via :func:`popcount_cardinality_table`) call this scalar, so
    batched estimates are bit-identical to per-object ones.
    """
    t = bit_count
    m = num_bits
    if t == 0:
        return 0.0
    if t >= m:
        # Saturated filter: the inversion diverges; report the value
        # for one unset bit as a finite (huge) upper estimate.
        t = m - 1
    return math.log1p(-t / m) / (num_hashes * math.log1p(-1.0 / m))


def popcount_cardinality_table(num_bits: int, num_hashes: int) -> np.ndarray:
    """Cardinality estimates for every possible popcount ``0 .. m``.

    Indexing this table with an integer popcount array vectorizes the
    inversion without touching transcendental functions in NumPy (whose
    libm may differ from :mod:`math` by ULPs — the table keeps batched
    and scalar paths exactly equal).
    """
    return np.array(
        [
            cardinality_from_popcount(t, num_bits, num_hashes)
            for t in range(num_bits + 1)
        ],
        dtype=np.float64,
    )


def pack_bit_row(bits: int, num_bits: int) -> np.ndarray:
    """Pack one big-int bit vector into a little-endian ``uint64`` row."""
    num_words = (num_bits + 63) // 64
    return np.frombuffer(
        bits.to_bytes(num_words * 8, "little"), dtype="<u8"
    ).copy()


def pack_bit_rows(bit_vectors: Iterable[int], num_bits: int) -> np.ndarray:
    """Pack big-int bit vectors into a ``(C, ceil(m/64))`` uint64 matrix."""
    num_words = (num_bits + 63) // 64
    vectors = list(bit_vectors)
    if not vectors:
        return np.zeros((0, num_words), dtype=np.uint64)
    payload = b"".join(b.to_bytes(num_words * 8, "little") for b in vectors)
    rows = np.frombuffer(payload, dtype="<u8").reshape(len(vectors), num_words)
    return rows.copy()


def batch_difference_popcounts(rows: np.ndarray, reference_row: np.ndarray) -> np.ndarray:
    """Popcount of ``row AND NOT reference`` for every packed row.

    One vectorized pass over the candidate matrix replaces C big-int
    difference constructions — the Bloom novelty hot loop (Section 5.2's
    ``bf_p AND NOT bf_ref``) reduced to two bitwise ops and a popcount.
    """
    diff = rows & ~reference_row
    if hasattr(np, "bitwise_count"):
        return np.bitwise_count(diff).sum(axis=1, dtype=np.int64)
    return np.unpackbits(diff.view(np.uint8), axis=1).sum(axis=1, dtype=np.int64)


class BloomFilter(SetSynopsis):
    """Immutable Bloom filter over integer document ids.

    Parameters
    ----------
    num_bits:
        Bit-vector length ``m``.  Two filters are only combinable when
        their ``num_bits``, ``num_hashes`` and ``seed`` all agree — the
        heterogeneity limitation the paper holds against Bloom filters.
    num_hashes:
        Number of hash probes ``k`` per element.
    seed:
        Hash-family seed; must be shared network-wide.
    """

    __slots__ = ("_num_bits", "_num_hashes", "_seed", "_bits", "_bit_count")

    def __init__(
        self, num_bits: int, num_hashes: int, seed: int = 0, _bits: int = 0
    ) -> None:
        if num_bits <= 0:
            raise ValueError(f"num_bits must be positive, got {num_bits}")
        if num_hashes <= 0:
            raise ValueError(f"num_hashes must be positive, got {num_hashes}")
        if _bits < 0 or _bits >> num_bits:
            raise ValueError("bit payload does not fit in num_bits")
        self._num_bits = num_bits
        self._num_hashes = num_hashes
        self._seed = seed
        self._bits = _bits
        self._bit_count: int | None = None

    # -- construction ----------------------------------------------------

    @classmethod
    def from_ids(  # type: ignore[override]
        cls,
        ids: Iterable[int],
        *,
        num_bits: int = 2048,
        num_hashes: int = 7,
        seed: int = 0,
    ) -> "BloomFilter":
        """Build a filter containing every id in ``ids``.

        Vectorized: all ``k * n`` probe positions are hashed as arrays
        and deduplicated before the bit vector is assembled, identical
        bit-for-bit to inserting ids one at a time.
        """
        id_array = ids_to_uint64_array(ids)
        if id_array.size == 0:
            return cls(num_bits, num_hashes, seed, 0)
        positions: set[int] = set()
        for probe in range(num_hashes):
            hashed = uniform_hash_array(id_array, seed ^ (probe + 1))
            positions.update(
                np.unique(hashed % np.uint64(num_bits)).tolist()
            )
        bits = 0
        for position in positions:
            bits |= 1 << position
        return cls(num_bits, num_hashes, seed, bits)

    def empty_like(self) -> "BloomFilter":
        return BloomFilter(self._num_bits, self._num_hashes, self._seed)

    def add(self, doc_id: int) -> "BloomFilter":
        """Return a new filter that additionally contains ``doc_id``."""
        bits = self._bits
        for probe in range(self._num_hashes):
            bits |= 1 << (uniform_hash(doc_id, self._seed ^ (probe + 1)) % self._num_bits)
        return BloomFilter(self._num_bits, self._num_hashes, self._seed, bits)

    # -- membership -------------------------------------------------------

    def __contains__(self, doc_id: int) -> bool:
        for probe in range(self._num_hashes):
            position = uniform_hash(doc_id, self._seed ^ (probe + 1)) % self._num_bits
            if not (self._bits >> position) & 1:
                return False
        return True

    def false_positive_rate(self) -> float:
        """Current false-positive probability ``(t/m)^k`` from the fill."""
        return (self.bit_count / self._num_bits) ** self._num_hashes

    # -- estimation ------------------------------------------------------

    def estimate_cardinality(self) -> float:
        return cardinality_from_popcount(
            self.bit_count, self._num_bits, self._num_hashes
        )

    def estimate_resemblance(self, other: SetSynopsis) -> float:
        self.check_compatible(other)
        assert isinstance(other, BloomFilter)
        union_est = self.union(other).estimate_cardinality()
        if union_est <= 0.0:
            return 0.0
        card_a = self.estimate_cardinality()
        card_b = other.estimate_cardinality()
        intersection_est = max(0.0, card_a + card_b - union_est)
        return min(1.0, intersection_est / union_est)

    # -- aggregation -----------------------------------------------------

    def union(self, other: SetSynopsis) -> "BloomFilter":
        self.check_compatible(other)
        assert isinstance(other, BloomFilter)
        return BloomFilter(
            self._num_bits, self._num_hashes, self._seed, self._bits | other._bits
        )

    def intersect(self, other: SetSynopsis) -> "BloomFilter":
        """Bitwise-AND approximation of the intersection filter.

        Slightly overestimates the true intersection filter (bits set by
        distinct elements of A and B may coincide) but is the standard
        construction and the one the paper uses for conjunctive queries.
        """
        self.check_compatible(other)
        assert isinstance(other, BloomFilter)
        return BloomFilter(
            self._num_bits, self._num_hashes, self._seed, self._bits & other._bits
        )

    def difference(self, other: SetSynopsis) -> "BloomFilter":
        """Bitwise difference ``self AND NOT other`` (Section 5.2).

        Not an exact Bloom filter of the set difference — shared bits are
        cleared even when set by non-shared elements — but the paper
        reports the induced error is acceptable unless the operands are
        already overloaded.
        """
        self.check_compatible(other)
        assert isinstance(other, BloomFilter)
        mask = (1 << self._num_bits) - 1
        return BloomFilter(
            self._num_bits, self._num_hashes, self._seed, self._bits & ~other._bits & mask
        )

    # -- bookkeeping -----------------------------------------------------

    @property
    def num_bits(self) -> int:
        return self._num_bits

    @property
    def num_hashes(self) -> int:
        return self._num_hashes

    @property
    def seed(self) -> int:
        return self._seed

    @property
    def raw_bits(self) -> int:
        """The bit vector as a non-negative integer (bit ``i`` = slot ``i``)."""
        return self._bits

    @property
    def bit_count(self) -> int:
        """Number of set bits ``t`` in the vector (cached — immutable)."""
        if self._bit_count is None:
            self._bit_count = self._bits.bit_count()
        return self._bit_count

    @property
    def fill_fraction(self) -> float:
        return self.bit_count / self._num_bits

    @property
    def size_in_bits(self) -> int:
        return self._num_bits

    @property
    def compressed_size_in_bits(self) -> float:
        """Entropy bound on the compressed wire size (Mitzenmacher 2002).

        The paper cites compressed Bloom filters [26]: a filter with fill
        fraction ``p`` is a Bernoulli(p) bit string, compressible to
        ``m * H(p)`` bits with ``H`` the binary entropy.  Sparse filters
        (small sets in large filters) ship far below ``m`` bits; a
        half-full filter is incompressible.  This is the quantity a
        bandwidth-conscious deployment would charge for posting.
        """
        p = self.fill_fraction
        if p <= 0.0 or p >= 1.0:
            return 0.0
        entropy = -(p * math.log2(p) + (1.0 - p) * math.log2(1.0 - p))
        return self._num_bits * entropy

    @property
    def is_empty(self) -> bool:
        return self._bits == 0

    def check_compatible(self, other: SetSynopsis) -> None:
        super().check_compatible(other)
        assert isinstance(other, BloomFilter)
        if (self._num_bits, self._num_hashes, self._seed) != (
            other._num_bits,
            other._num_hashes,
            other._seed,
        ):
            raise IncompatibleSynopsesError(
                "Bloom filters require identical (num_bits, num_hashes, seed): "
                f"{(self._num_bits, self._num_hashes, self._seed)} vs "
                f"{(other._num_bits, other._num_hashes, other._seed)}"
            )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BloomFilter):
            return NotImplemented
        return (
            self._num_bits == other._num_bits
            and self._num_hashes == other._num_hashes
            and self._seed == other._seed
            and self._bits == other._bits
        )

    def __hash__(self) -> int:
        return hash((self._num_bits, self._num_hashes, self._seed, self._bits))

    def __repr__(self) -> str:
        return (
            f"BloomFilter(m={self._num_bits}, k={self._num_hashes}, "
            f"fill={self.fill_fraction:.3f})"
        )
