"""Score-histogram synopses for score-conscious novelty (Section 7.1).

In ranked retrieval the interesting overlap is among the *high-scoring*
portions of index lists, not the full document sets.  The paper proposes
building one ordinary set synopsis per *histogram cell*, where each cell
covers a score range of the index list.  Novelty between two peers is
then a weighted sum of per-cell novelties, weighting high-score cells
more.

This module provides the composite data structure: equal-width score
cells over ``[0, 1]`` (scores are normalized), each holding a synopsis of
the docIDs whose score falls in the cell, plus the exact per-cell counts
known at build time.  The *weighted novelty* computation itself lives in
:mod:`repro.core.histogram_routing`, keeping this package free of routing
logic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from .base import IncompatibleSynopsesError, SetSynopsis
from .factory import SynopsisSpec

__all__ = ["ScoreHistogramSynopsis", "cell_index"]


def cell_index(score: float, num_cells: int) -> int:
    """Map a normalized score in ``[0, 1]`` to its cell index.

    Cell ``i`` covers ``[i / num_cells, (i + 1) / num_cells)``; a score of
    exactly 1.0 belongs to the top cell.
    """
    if not 0.0 <= score <= 1.0:
        raise ValueError(f"scores must be normalized to [0, 1], got {score}")
    if num_cells <= 0:
        raise ValueError(f"num_cells must be positive, got {num_cells}")
    return min(int(score * num_cells), num_cells - 1)


@dataclass(frozen=True)
class ScoreHistogramSynopsis:
    """Per-score-cell synopses of one index list.

    Attributes
    ----------
    cells:
        ``num_cells`` synopses, low-score cell first.
    cell_cardinalities:
        Exact (at build time) or estimated (after aggregation) number of
        documents per cell.
    spec:
        The synopsis configuration every cell was built with; cells of
        two histograms are only combinable when their specs agree.
    """

    cells: tuple[SetSynopsis, ...]
    cell_cardinalities: tuple[float, ...]
    spec: SynopsisSpec

    def __post_init__(self) -> None:
        if not self.cells:
            raise ValueError("a histogram synopsis needs at least one cell")
        if len(self.cells) != len(self.cell_cardinalities):
            raise ValueError(
                f"{len(self.cells)} cells but "
                f"{len(self.cell_cardinalities)} cardinalities"
            )
        if any(c < 0 for c in self.cell_cardinalities):
            raise ValueError("cell cardinalities must be >= 0")

    # -- construction ----------------------------------------------------

    @classmethod
    def from_scored_ids(
        cls,
        scored_ids: Iterable[tuple[int, float]],
        *,
        spec: SynopsisSpec,
        num_cells: int = 4,
    ) -> "ScoreHistogramSynopsis":
        """Build from ``(doc_id, normalized_score)`` pairs.

        The per-cell synopsis budget is whatever ``spec`` prescribes; a
        caller wanting a fixed *total* budget should downsize the spec by
        ``num_cells`` first (see ``SynopsisSpec.for_budget``).
        """
        buckets: list[list[int]] = [[] for _ in range(num_cells)]
        for doc_id, score in scored_ids:
            buckets[cell_index(score, num_cells)].append(doc_id)
        cells = tuple(spec.build(bucket) for bucket in buckets)
        cardinalities = tuple(float(len(bucket)) for bucket in buckets)
        return cls(cells=cells, cell_cardinalities=cardinalities, spec=spec)

    @classmethod
    def empty(cls, *, spec: SynopsisSpec, num_cells: int = 4) -> "ScoreHistogramSynopsis":
        """An all-empty histogram (IQN's initial reference)."""
        return cls(
            cells=tuple(spec.empty() for _ in range(num_cells)),
            cell_cardinalities=(0.0,) * num_cells,
            spec=spec,
        )

    # -- aggregation -----------------------------------------------------

    def union(
        self,
        other: "ScoreHistogramSynopsis",
        merged_cardinalities: Sequence[float] | None = None,
    ) -> "ScoreHistogramSynopsis":
        """Cell-wise union with ``other``.

        Exact union cardinalities are unknowable from synopses alone, so
        callers that track per-cell estimates (the IQN reference update)
        pass them via ``merged_cardinalities``; otherwise the upper bound
        ``card_a + card_b`` is recorded.
        """
        self.check_compatible(other)
        cells = tuple(a.union(b) for a, b in zip(self.cells, other.cells))
        if merged_cardinalities is None:
            merged_cardinalities = [
                a + b
                for a, b in zip(self.cell_cardinalities, other.cell_cardinalities)
            ]
        if len(merged_cardinalities) != len(cells):
            raise ValueError(
                f"expected {len(cells)} merged cardinalities, "
                f"got {len(merged_cardinalities)}"
            )
        return ScoreHistogramSynopsis(
            cells=cells,
            cell_cardinalities=tuple(float(c) for c in merged_cardinalities),
            spec=self.spec,
        )

    # -- bookkeeping -----------------------------------------------------

    @property
    def num_cells(self) -> int:
        return len(self.cells)

    @property
    def total_cardinality(self) -> float:
        return sum(self.cell_cardinalities)

    @property
    def size_in_bits(self) -> int:
        return sum(cell.size_in_bits for cell in self.cells)

    def cell_midpoint_score(self, index: int) -> float:
        """Midpoint of cell ``index``'s score range — the default weight."""
        if not 0 <= index < self.num_cells:
            raise IndexError(f"cell index {index} out of range")
        return (index + 0.5) / self.num_cells

    def check_compatible(self, other: "ScoreHistogramSynopsis") -> None:
        if self.num_cells != other.num_cells:
            raise IncompatibleSynopsesError(
                f"histogram cell counts differ: {self.num_cells} vs {other.num_cells}"
            )
        if self.spec != other.spec:
            raise IncompatibleSynopsesError(
                f"histogram cell specs differ: {self.spec} vs {other.spec}"
            )
