"""Latency estimation on top of the message cost model.

The paper's closing efficiency argument (Section 8.2): "response times
are a highly superlinear function of load when peers or network
components such as routers are heavily utilized."  The cost model counts
messages and bits; this module turns a :class:`~repro.net.cost.CostSnapshot`
into time:

- :class:`LatencyProfile` — a linear wire model (per-message overhead +
  transmission time per byte, with DHT hops as separate messages);
- :func:`mm1_response_time` — the M/M/1 queueing curve ``T = S / (1 - ρ)``
  behind the "highly superlinear" remark: as utilization ``ρ`` approaches
  1, response time diverges, which is why cutting the number of
  contacted peers (IQN's whole point) buys more than its linear share.
"""

from __future__ import annotations

from dataclasses import dataclass

from .cost import CostSnapshot

__all__ = ["LatencyProfile", "mm1_response_time"]


@dataclass(frozen=True)
class LatencyProfile:
    """A simple wide-area wire model.

    Defaults approximate a 2006-era DSL peer: 30 ms one-way latency per
    message and 1 Mbit/s upstream (≈ 1 ms per 1000 bits).
    """

    per_message_ms: float = 30.0
    per_kilobit_ms: float = 1.0

    def __post_init__(self) -> None:
        if self.per_message_ms < 0 or self.per_kilobit_ms < 0:
            raise ValueError("latency components must be >= 0")

    def estimate_ms(self, snapshot: CostSnapshot) -> float:
        """Total serialized wire time for everything in the snapshot.

        An upper bound (assumes no pipelining): every message pays the
        round-trip overhead and its payload transmission time.
        """
        return (
            snapshot.total_messages * self.per_message_ms
            + snapshot.total_bits / 1000.0 * self.per_kilobit_ms
        )

    def estimate_ms_by_kind(self, snapshot: CostSnapshot) -> dict[str, float]:
        """Per-message-kind breakdown of :meth:`estimate_ms`."""
        # Sorted so the breakdown's dict order never depends on the
        # hash seed; callers serialize these per-kind tables verbatim.
        kinds = sorted(set(snapshot.messages_by_kind) | set(snapshot.bits_by_kind))
        return {
            kind: (
                snapshot.messages(kind) * self.per_message_ms
                + snapshot.bits(kind) / 1000.0 * self.per_kilobit_ms
            )
            for kind in kinds
        }


def mm1_response_time(service_time_ms: float, utilization: float) -> float:
    """M/M/1 expected response time ``S / (1 - ρ)``.

    ``utilization`` is the offered load over capacity, in ``[0, 1)``.
    The curve quantifies the paper's remark: at 50% load a request takes
    2x its service time, at 90% load 10x — so halving the peers touched
    per query (what IQN achieves at equal recall) improves response
    times superlinearly on loaded networks.
    """
    if service_time_ms <= 0:
        raise ValueError(f"service_time_ms must be positive, got {service_time_ms}")
    if not 0.0 <= utilization < 1.0:
        raise ValueError(
            f"utilization must be in [0, 1), got {utilization}"
        )
    return service_time_ms / (1.0 - utilization)
