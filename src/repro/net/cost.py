"""Network cost accounting.

The paper's efficiency argument is that IQN's routing decisions touch
only the DHT directory ("does not yet contact any remote peers at all
other than for the, very fast DHT-based, directory lookups") and that
synopsis size drives the dominant posting/update bandwidth (Section 7.2).
To make those claims measurable, every simulated network interaction is
recorded here as a message with a kind and a payload size in bits.

Message kinds used by the stack:

- ``post``            — a peer publishing one per-term Post
- ``peerlist_fetch``  — the initiator retrieving a term's PeerList
- ``dht_hop``         — one Chord routing hop
- ``query_forward``   — forwarding the query to a selected peer
- ``result_return``   — a queried peer shipping its local top-k back
- ``result_batch``    — one score-sorted result batch on the streamed
  serving path (:mod:`repro.serving`), replacing a full result_return
- ``cluster_fetch``   — the initiator pulling the per-term cluster
  directory from its super-peer (:mod:`repro.topology`)
- ``member_fetch``    — one winning cluster's super-peer shipping its
  members' restricted PeerList entries back
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

__all__ = ["MessageKinds", "CostModel", "CostSnapshot"]


class MessageKinds:
    """Canonical message-kind names (plain constants, not an enum, so the
    cost model stays open to user-defined kinds)."""

    POST = "post"
    PEERLIST_FETCH = "peerlist_fetch"
    DHT_HOP = "dht_hop"
    QUERY_FORWARD = "query_forward"
    RESULT_RETURN = "result_return"
    RESULT_BATCH = "result_batch"
    CLUSTER_FETCH = "cluster_fetch"
    MEMBER_FETCH = "member_fetch"


@dataclass(frozen=True)
class CostSnapshot:
    """Immutable view of accumulated costs."""

    messages_by_kind: dict[str, int]
    bits_by_kind: dict[str, int]

    @property
    def total_messages(self) -> int:
        return sum(self.messages_by_kind.values())

    @property
    def total_bits(self) -> int:
        return sum(self.bits_by_kind.values())

    @property
    def total_bytes(self) -> float:
        return self.total_bits / 8

    def messages(self, kind: str) -> int:
        return self.messages_by_kind.get(kind, 0)

    def bits(self, kind: str) -> int:
        return self.bits_by_kind.get(kind, 0)

    def __sub__(self, other: "CostSnapshot") -> "CostSnapshot":
        """Delta between two snapshots (self - earlier)."""
        # Sorted so the delta's dict order never depends on the hash
        # seed: these snapshots end up in serialized experiment reports.
        kinds = sorted(set(self.messages_by_kind) | set(other.messages_by_kind))
        return CostSnapshot(
            messages_by_kind={
                k: self.messages_by_kind.get(k, 0) - other.messages_by_kind.get(k, 0)
                for k in kinds
            },
            bits_by_kind={
                k: self.bits_by_kind.get(k, 0) - other.bits_by_kind.get(k, 0)
                for k in kinds
            },
        )


class CostModel:
    """Mutable accumulator of message counts and payload bits."""

    def __init__(self) -> None:
        self._messages: Counter[str] = Counter()
        self._bits: Counter[str] = Counter()

    def record(self, kind: str, *, bits: int = 0, count: int = 1) -> None:
        """Charge ``count`` messages of ``kind`` carrying ``bits`` total."""
        if bits < 0:
            raise ValueError(f"bits must be >= 0, got {bits}")
        if count < 0:
            raise ValueError(f"count must be >= 0, got {count}")
        self._messages[kind] += count
        self._bits[kind] += bits

    def snapshot(self) -> CostSnapshot:
        return CostSnapshot(
            messages_by_kind=dict(self._messages),
            bits_by_kind=dict(self._bits),
        )

    def reset(self) -> None:
        self._messages.clear()
        self._bits.clear()

    @property
    def total_messages(self) -> int:
        return sum(self._messages.values())

    @property
    def total_bits(self) -> int:
        return sum(self._bits.values())

    def __repr__(self) -> str:
        return (
            f"CostModel(messages={self.total_messages}, "
            f"bits={self.total_bits})"
        )
