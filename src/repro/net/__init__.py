"""Network cost accounting and latency estimation."""

from .cost import CostModel, CostSnapshot, MessageKinds
from .latency import LatencyProfile, mm1_response_time

__all__ = [
    "CostModel",
    "CostSnapshot",
    "MessageKinds",
    "LatencyProfile",
    "mm1_response_time",
]
