"""Distributed top-k peer retrieval over PeerLists (Section 4).

For popular terms a PeerList can contain thousands of Posts; shipping it
whole to the query initiator defeats the purpose of compact routing
state.  The paper points to distributed top-k algorithms (KLEE, [25]) to
fetch "the top-k peers over all lists" instead.

This module implements an **NRA-style (no-random-access) threshold
algorithm** over quality-sorted PeerList batches:

1. round-robin over the query terms, fetching the next batch of each
   term's PeerList in descending ``max_score`` order;
2. maintain, per seen peer, a *lower bound* (sum of its seen per-term
   scores) and an *upper bound* (lower bound plus, for each term not yet
   seen for this peer, the score of the last entry fetched from that
   term's list — nothing deeper can score higher);
3. stop when the k-th best lower bound is at least the best upper bound
   any other peer (seen or unseen) could still reach.

The result is the exact top-k by summed quality score, fetched with a
fraction of the PeerList payload.  The fetched Posts double as the
routing context for IQN, which then re-ranks the shortlist by
quality*novelty — matching MINERVA's two-stage design.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .directory import Directory
from .posts import Post

__all__ = ["TopKPeerResult", "fetch_top_k_peers"]

#: Quality proxy used for PeerList ordering and the threshold bounds.
#: The directory orders by max_score (see ``PeerList.top_by_quality``),
#: so the per-term score contribution of a post is its max_score.
def _post_score(post: Post) -> float:
    return post.max_score


@dataclass
class TopKPeerResult:
    """Outcome of a distributed top-k PeerList fetch."""

    #: Peer ids of the exact top-k by summed per-term quality, best first.
    top_peers: list[str]
    #: Every fetched Post, grouped per term — the partial PeerLists a
    #: routing context can be built from.
    posts_by_term: dict[str, dict[str, Post]]
    #: Batches requested per term (round trips to directory nodes).
    batches_fetched: int
    #: Total posts shipped (payload volume; compare to full list sizes).
    posts_fetched: int
    #: True when every list was exhausted before the threshold fired
    #: (the result is still exact; there was just nothing left to skip).
    exhausted: bool = False

    @property
    def shortlist(self) -> set[str]:
        """All peers seen during the fetch (a superset of top_peers)."""
        seen: set[str] = set()
        for posts in self.posts_by_term.values():
            seen.update(posts)
        return seen


@dataclass
class _PeerState:
    lower_bound: float = 0.0
    seen_terms: set[str] = field(default_factory=set)


def fetch_top_k_peers(
    directory: Directory,
    terms: tuple[str, ...],
    k: int,
    *,
    batch_size: int = 8,
    requester: str | None = None,
    max_batches: int = 1000,
) -> TopKPeerResult:
    """Run the NRA threshold algorithm; see the module docstring."""
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    if batch_size <= 0:
        raise ValueError(f"batch_size must be positive, got {batch_size}")
    unique_terms = list(dict.fromkeys(terms))
    if not unique_terms:
        raise ValueError("at least one term is required")

    offsets = {term: 0 for term in unique_terms}
    # Score of the deepest entry fetched so far per term; an unseen peer
    # cannot beat it.  Starts at +inf (nothing fetched -> no bound yet).
    frontier = {term: float("inf") for term in unique_terms}
    exhausted_terms: set[str] = set()
    peers: dict[str, _PeerState] = {}
    posts_by_term: dict[str, dict[str, Post]] = {t: {} for t in unique_terms}
    batches = 0
    posts_fetched = 0

    def upper_bound(state: _PeerState) -> float:
        bound = state.lower_bound
        for term in unique_terms:
            if term not in state.seen_terms and term not in exhausted_terms:
                bound += frontier[term]
        return bound

    def unseen_peer_bound() -> float:
        live = [
            frontier[t] for t in unique_terms if t not in exhausted_terms
        ]
        return sum(live) if live else float("-inf")

    while batches < max_batches:
        progressed = False
        for term in unique_terms:
            if term in exhausted_terms:
                continue
            batch = directory.peer_list_batch(
                term,
                offset=offsets[term],
                limit=batch_size,
                requester=requester,
            )
            batches += 1
            progressed = True
            offsets[term] += len(batch)
            posts_fetched += len(batch)
            if len(batch) < batch_size:
                exhausted_terms.add(term)
            for post in batch:
                posts_by_term[term][post.peer_id] = post
                state = peers.setdefault(post.peer_id, _PeerState())
                state.lower_bound += _post_score(post)
                state.seen_terms.add(term)
                frontier[term] = _post_score(post)
            if not batch:
                frontier[term] = 0.0

        if not progressed:
            break

        # Threshold test: can anything outside the current top-k still
        # overtake the k-th lower bound?
        if len(peers) >= k and all(t in frontier for t in unique_terms):
            if any(frontier[t] == float("inf") for t in unique_terms):
                continue
            ranked = sorted(
                peers.items(),
                key=lambda item: (-item[1].lower_bound, item[0]),
            )
            kth_lower = ranked[min(k, len(ranked)) - 1][1].lower_bound
            challenger = max(
                (
                    upper_bound(state)
                    for peer_id, state in ranked[k:]
                ),
                default=float("-inf"),
            )
            challenger = max(challenger, unseen_peer_bound())
            if kth_lower >= challenger:
                return TopKPeerResult(
                    top_peers=[peer_id for peer_id, _ in ranked[:k]],
                    posts_by_term=posts_by_term,
                    batches_fetched=batches,
                    posts_fetched=posts_fetched,
                )
        if len(exhausted_terms) == len(unique_terms):
            break

    ranked = sorted(
        peers.items(), key=lambda item: (-item[1].lower_bound, item[0])
    )
    return TopKPeerResult(
        top_peers=[peer_id for peer_id, _ in ranked[:k]],
        posts_by_term=posts_by_term,
        batches_fetched=batches,
        posts_fetched=posts_fetched,
        exhausted=True,
    )
