"""Network-wide term statistics derived from PeerLists.

A term's PeerList reveals more than routing candidates.  Summing the
posted list lengths gives the total posting mass, but because peer
collections overlap, that sum badly overcounts the number of *distinct*
documents network-wide.  The same synopses that power IQN fix this: the
union of all posts' synopses estimates the distinct document count, and
the ratio of the two is the term's average replication factor — a
direct, cheap measurement of the redundancy phenomenon that motivates
the whole paper.

These statistics also feed the adaptive synopsis-type policy
(:class:`repro.core.adaptive.AdaptiveSpecPolicy`), which must base its
choices on globally consistent numbers.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..synopses.base import IncompatibleSynopsesError, SetSynopsis
from .posts import PeerList

__all__ = ["GlobalTermStats", "global_term_statistics"]


@dataclass(frozen=True)
class GlobalTermStats:
    """Directory-derived statistics for one term."""

    term: str
    #: Number of peers holding the term (CORI's cf_t).
    collection_frequency: int
    #: Sum of posted index-list lengths (with replication overcounting).
    total_postings: int
    #: Estimated number of *distinct* documents network-wide.
    distinct_documents: float
    #: ``total_postings / distinct_documents`` — how many peers hold the
    #: average matching document.  1.0 means disjoint collections.
    replication_factor: float

    def __post_init__(self) -> None:
        if self.collection_frequency < 0 or self.total_postings < 0:
            raise ValueError("counts must be >= 0")


def global_term_statistics(peer_list: PeerList) -> GlobalTermStats:
    """Compute :class:`GlobalTermStats` from a fetched PeerList.

    The distinct-document estimate is the cardinality of the union of
    all posts' synopses, clamped to the feasible range
    ``[max cdf, sum cdf]`` using the exact per-post list lengths.  Posts
    without synopses (or with incompatible ones) fall back to
    contributing their cdf as if disjoint — a conservative upper bound.
    """
    posts = list(peer_list)
    total = sum(post.cdf for post in posts)
    if total == 0:
        return GlobalTermStats(
            term=peer_list.term,
            collection_frequency=len(posts),
            total_postings=0,
            distinct_documents=0.0,
            replication_factor=1.0,
        )
    union: SetSynopsis | None = None
    covered_cdf = 0
    uncovered_cdf = 0
    max_cdf = 0
    for post in posts:
        max_cdf = max(max_cdf, post.cdf)
        if post.synopsis is None or post.cdf == 0:
            uncovered_cdf += post.cdf
            continue
        if union is None:
            union = post.synopsis
            covered_cdf += post.cdf
            continue
        try:
            union = union.union(post.synopsis)
            covered_cdf += post.cdf
        except IncompatibleSynopsesError:
            uncovered_cdf += post.cdf
    if union is None or union.is_empty:
        distinct = float(total)
    else:
        estimate = union.estimate_cardinality()
        # Clamp the synopsis estimate to what the exact lengths allow,
        # then add the uncovered posts as if disjoint.
        distinct = min(max(estimate, float(max_cdf)), float(covered_cdf))
        distinct += uncovered_cdf
        distinct = min(distinct, float(total))
    replication = total / distinct if distinct > 0 else 1.0
    return GlobalTermStats(
        term=peer_list.term,
        collection_frequency=len(posts),
        total_postings=total,
        distinct_documents=distinct,
        replication_factor=max(1.0, replication),
    )
