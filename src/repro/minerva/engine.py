"""The assembled MINERVA testbed: peers + DHT directory + routing + execution.

This is the in-process equivalent of the paper's PC-cluster prototype
(Section 4 and 8.1).  The engine owns:

- the peers with their local collections and indexes;
- a Chord ring whose nodes are the peers, carrying the distributed
  directory of Posts/PeerLists;
- a cost model charged for every post, directory lookup, query forward
  and result return;
- the *centralized reference engine* — an index over the union of all
  collections with the same scoring scheme — against which relative
  recall is measured (Section 8.1).

A query runs in the paper's three phases: fetch PeerLists from the
directory, route (any :class:`~repro.routing.base.PeerSelector`), then
forward to the selected peers and merge their local top-k results.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from ..datasets.queries import Query
from ..dht.hashing import DEFAULT_ID_BITS, chord_id
from ..dht.ring import ChordRing
from ..ir.documents import Corpus, Document
from ..ir.index import InvertedIndex
from ..ir.merge import merge_results, weighted_merge
from ..ir.metrics import relative_recall, result_ids
from ..ir.scoring import Scorer
from ..ir.topk import ScoredDocument, execute_query
from ..net.cost import CostModel, CostSnapshot, MessageKinds
from ..routing.base import LocalView, PeerSelector, RoutingContext
from ..synopses.factory import SynopsisSpec
from .directory import Directory
from .peer import Peer
from .posts import PeerList

if TYPE_CHECKING:  # annotation only — avoids core/simnet import cycles
    from ..core.fastpath import RoutingStats
    from ..net.latency import LatencyProfile
    from ..simnet.executor import NetworkedQueryOutcome
    from ..simnet.faults import FaultPlan
    from ..simnet.rpc import RetryPolicy
    from ..topology.base import RoutingTopology

__all__ = ["QueryOutcome", "MinervaEngine"]

#: Bits charged per returned result entry: a 32-bit global id + 32-bit score.
RESULT_ENTRY_BITS = 64

#: Bits charged for forwarding a query: terms are small; one 32-bit token
#: per term plus a 64-bit header is a fair order of magnitude.
QUERY_HEADER_BITS = 64
QUERY_TERM_BITS = 32

#: Extra request bits on a streamed batch fetch (:mod:`repro.serving`):
#: a 32-bit offset plus a 32-bit batch limit on top of the query header.
BATCH_HEADER_BITS = 64


@dataclass(frozen=True)
class QueryOutcome:
    """Everything measured for one routed and executed query.

    ``recall_at[j]`` is the relative recall achieved by the initiator's
    local result plus the first ``j`` selected peers, for ``j = 0 ..
    len(selected)`` — i.e. the x-axis of Figure 3 ("number of queried
    peers") indexes this list.
    """

    query: Query
    initiator_id: str
    selected: tuple[str, ...]
    recall_at: tuple[float, ...]
    merged: tuple[ScoredDocument, ...]
    reference_ids: frozenset[int]
    cost: CostSnapshot
    per_peer_results: dict[str, tuple[ScoredDocument, ...]] = field(repr=False)
    #: Routing work counters from the selector's last rank call (selectors
    #: without instrumentation — anything but IQNRouter — leave this None).
    routing_stats: "RoutingStats | None" = field(default=None, repr=False)
    #: Clusters selected in phase one when routing through a hierarchical
    #: topology (empty on the flat topology).
    clusters_ranked: tuple[str, ...] = ()
    #: Messages answered by super-peers while assembling this query.
    super_fetches: int = 0

    @property
    def final_recall(self) -> float:
        return self.recall_at[-1]


class MinervaEngine:
    """An in-process MINERVA network over a fixed set of collections."""

    def __init__(
        self,
        collections: list[Corpus],
        *,
        spec: SynopsisSpec,
        scorer: Scorer | None = None,
        histogram_cells: int | None = None,
        replicas: int = 1,
        ring_bits: int = DEFAULT_ID_BITS,
        indexes: list[InvertedIndex] | None = None,
        reference_index: InvertedIndex | None = None,
        topology: "RoutingTopology | None" = None,
    ) -> None:
        if not collections:
            raise ValueError("an engine needs at least one collection")
        if indexes is not None and len(indexes) != len(collections):
            raise ValueError(
                f"got {len(indexes)} prebuilt indexes for "
                f"{len(collections)} collections"
            )
        self.spec = spec
        self.cost = CostModel()
        width = max(2, len(str(len(collections) - 1)))
        self.peers: dict[str, Peer] = {}
        for i, corpus in enumerate(collections):
            peer_id = f"p{i:0{width}d}"
            self.peers[peer_id] = Peer(
                peer_id,
                corpus,
                spec=spec,
                scorer=scorer,
                histogram_cells=histogram_cells,
                index=indexes[i] if indexes is not None else None,
            )
        self.ring = ChordRing(self.peers.keys(), bits=ring_bits)
        node_of_peer = {
            peer_id: chord_id(peer_id, bits=ring_bits, salt="node")
            for peer_id in self.peers
        }
        self.directory = Directory(
            self.ring,
            cost=self.cost,
            replicas=replicas,
            node_of_peer=node_of_peer,
        )
        self._reference_index: InvertedIndex | None = reference_index
        self._scorer = scorer
        self._published_terms: set[str] = set()
        self._departed: set[str] = set()
        if topology is None:
            # Late import: repro.topology imports minerva.posts, which
            # pulls in this module via the package __init__.
            from ..topology.flat import FlatTopology

            topology = FlatTopology()
        self.topology = topology
        self.topology.bind(self)

    @property
    def num_peers(self) -> int:
        """Current network size (the TopologyHost contract)."""
        return len(self.peers)

    # -- directory population ---------------------------------------------------

    def publish(
        self, terms: set[str] | None = None, *, with_histogram: bool = False
    ) -> int:
        """Have every peer post its summaries for ``terms``.

        ``terms=None`` publishes every peer's full vocabulary (the
        realistic but expensive mode); experiments that know their query
        workload publish only the needed terms, which does not change any
        routing decision for those queries.  Returns the number of Posts
        published.
        """
        published = 0
        for peer in self.peers.values():
            peer_terms = (
                peer.index.vocabulary
                if terms is None
                else {t for t in terms if t in peer.index}
            )
            for term in sorted(peer_terms):
                self.directory.publish(
                    peer.build_post(term, with_histogram=with_histogram)
                )
                published += 1
        self._published_terms.update(
            terms if terms is not None else self.all_terms()
        )
        return published

    def all_terms(self) -> set[str]:
        terms: set[str] = set()
        for peer in self.peers.values():
            terms.update(peer.index.vocabulary)
        return terms

    # -- churn (Section 1.1: "resilience to failures and churn") -----------------

    def add_peer(
        self,
        peer_id: str,
        corpus: Corpus,
        *,
        publish_terms: set[str] | None = None,
        with_histogram: bool = False,
    ) -> Peer:
        """Join a new peer: index locally, join the ring, publish Posts.

        The Chord join migrates the directory keys the newcomer now owns;
        ``publish_terms`` limits what the peer posts (None = everything
        previously published network-wide that the peer holds).
        """
        if peer_id in self.peers:
            raise ValueError(f"peer id {peer_id!r} already in the network")
        peer = Peer(
            peer_id,
            corpus,
            spec=self.spec,
            scorer=self._scorer,
            histogram_cells=None,
        )
        self.peers[peer_id] = peer
        node = self.ring.add_node(peer_id)
        self.directory._node_of_peer[peer_id] = node.node_id
        terms = (
            {t for t in self._published_terms if t in peer.index}
            if publish_terms is None
            else {t for t in publish_terms if t in peer.index}
        )
        for term in sorted(terms):
            self.directory.publish(
                peer.build_post(term, with_histogram=with_histogram)
            )
        self._published_terms.update(terms)
        # The union of collections changed; the reference engine must be
        # rebuilt lazily on next access.
        self._reference_index = None
        self._departed.discard(peer_id)
        self.topology.handle_peer_up(peer_id)
        return peer

    def remove_peer(self, peer_id: str, *, purge_posts: bool = True) -> None:
        """A peer leaves: hand its directory keys over, drop its Posts.

        With ``purge_posts=False`` the departed peer's Posts linger in
        the PeerLists (the realistic crash case) until re-publication; a
        router may then select a dead peer, which ``execute`` reports as
        an empty contribution.
        """
        peer = self._get_peer(peer_id)
        node_id = self.directory._node_of_peer.pop(peer_id)
        self.ring.remove_node(node_id)
        del self.peers[peer_id]
        if purge_posts:
            self.purge_posts_of(peer_id)
        self._reference_index = None
        # Keep a tombstone view so executions skip the dead peer.
        self._departed.add(peer_id)
        # Hierarchical topologies rebuild the cluster entry and re-elect
        # if the departed peer was a super-peer (no-op on FlatTopology).
        self.topology.handle_peer_down(peer_id)
        _ = peer  # the object dies with its last reference

    def grow_peer(
        self,
        peer_id: str,
        documents: Iterable[Document],
        *,
        republish_terms: set[str] | None = None,
        drift_factor: float = 1.5,
    ) -> list[str]:
        """A peer's crawl grows; optionally refresh its directory Posts.

        Adds ``documents`` to the peer's collection, invalidates the
        centralized reference index (the network's union changed), and
        returns the terms whose index lists drifted past ``drift_factor``
        — the re-posting candidates.

        ``republish_terms`` controls what actually gets re-posted:
        ``None`` re-posts exactly the drifted terms (threshold policy), a
        set re-posts that set (pass ``set()`` for a never-repost policy;
        the directory then serves stale Posts, and routing quality decays
        accordingly — the trade studied by
        :mod:`repro.experiments.reposting`).
        """
        peer = self._get_peer(peer_id)
        drifted = peer.add_documents(documents, drift_factor=drift_factor)
        self._reference_index = None
        terms = drifted if republish_terms is None else sorted(republish_terms)
        for term in terms:
            if term in peer.index:
                self.directory.publish(peer.build_post(term))
        self._published_terms.update(t for t in terms if t in peer.index)
        return drifted

    def purge_posts_of(self, peer_id: str) -> int:
        """Garbage-collect a departed peer's Posts from all PeerLists."""
        removed = 0
        for node_id in self.ring.node_ids:
            for value in self.ring.node(node_id).store.values():
                if isinstance(value, PeerList) and value.get(peer_id):
                    del value.posts[peer_id]
                    removed += 1
        return removed

    # -- reference engine ----------------------------------------------------------

    @property
    def reference_index(self) -> InvertedIndex:
        """The centralized engine over the union of all collections."""
        if self._reference_index is None:
            union: dict[int, object] = {}
            for peer in self.peers.values():
                for document in peer.corpus:
                    union.setdefault(document.doc_id, document)
            corpus = Corpus.from_documents(
                union[doc_id] for doc_id in sorted(union)  # type: ignore[misc]
            )
            self._reference_index = InvertedIndex(corpus, self._scorer)
        return self._reference_index

    def reference_topk(
        self, query: Query, *, k: int, conjunctive: bool = False
    ) -> frozenset[int]:
        """Doc ids of the centralized engine's top-k for ``query``."""
        results = execute_query(
            self.reference_index, query.terms, k=k, conjunctive=conjunctive
        )
        return result_ids(results)

    # -- query pipeline --------------------------------------------------------------

    def local_view(
        self,
        query: Query,
        initiator_id: str,
        *,
        k: int = 50,
        conjunctive: bool = False,
    ) -> LocalView:
        """The initiator's local knowledge (seeds the reference synopsis)."""
        initiator = self._get_peer(initiator_id)
        local_result = initiator.answer_query(
            query.terms, k=k, conjunctive=conjunctive
        )
        return LocalView(
            peer_id=initiator_id,
            result_doc_ids=result_ids(local_result),
            doc_ids_by_term={
                term: initiator.local_doc_ids(term) for term in query.terms
            },
        )

    def make_context(
        self,
        query: Query,
        *,
        initiator_id: str,
        k: int = 50,
        conjunctive: bool = False,
        peer_list_limit: int | None = None,
        peer_list_batch_size: int = 8,
        max_peers: int | None = None,
    ) -> RoutingContext:
        """Assemble the routing context via the topology (Section 4).

        The topology owns candidate assembly: :class:`FlatTopology`
        fetches one full PeerList per term (or, with ``peer_list_limit``,
        the distributed quality-ordered top-k fetch of
        :mod:`repro.minerva.topk_peers`, whose partial lists routing then
        sees — the approximation the paper accepts "for efficiency
        reasons").  A hierarchical topology instead ranks clusters and
        returns only the winning clusters' member posts; ``max_peers``
        lets it derive its cluster budget from the query's peer budget.
        """
        local_view = self.local_view(
            query, initiator_id, k=k, conjunctive=conjunctive
        )
        scoped = self.topology.assemble(
            query,
            requester=initiator_id,
            initiator=local_view,
            conjunctive=conjunctive,
            max_peers=max_peers,
            peer_list_limit=peer_list_limit,
            peer_list_batch_size=peer_list_batch_size,
        )
        return self.topology.context_for(
            query, scoped, initiator=local_view, conjunctive=conjunctive
        )

    def execute(
        self,
        query: Query,
        peer_ids: list[str],
        *,
        k: int = 50,
        conjunctive: bool = False,
    ) -> dict[str, tuple[ScoredDocument, ...]]:
        """Forward the query to ``peer_ids`` and collect local top-k lists."""
        per_peer: dict[str, tuple[ScoredDocument, ...]] = {}
        query_bits = QUERY_HEADER_BITS + QUERY_TERM_BITS * len(query.terms)
        for peer_id in peer_ids:
            if peer_id in self._departed:
                # Stale Post selected a dead peer: the forward is paid,
                # nothing comes back (the realistic crash-churn case).
                self.cost.record(MessageKinds.QUERY_FORWARD, bits=query_bits)
                per_peer[peer_id] = ()
                continue
            peer = self._get_peer(peer_id)
            self.cost.record(MessageKinds.QUERY_FORWARD, bits=query_bits)
            results = tuple(
                peer.answer_query(query.terms, k=k, conjunctive=conjunctive)
            )
            self.cost.record(
                MessageKinds.RESULT_RETURN, bits=RESULT_ENTRY_BITS * len(results)
            )
            per_peer[peer_id] = results
        return per_peer

    def run_query(
        self,
        query: Query,
        selector: PeerSelector,
        *,
        initiator_id: str | None = None,
        max_peers: int = 10,
        k: int = 50,
        peer_k: int | None = None,
        conjunctive: bool = False,
        peer_list_limit: int | None = None,
        cori_weighted_merge: bool = False,
    ) -> QueryOutcome:
        """Route, execute, merge, and measure one query end to end.

        ``k`` is the centralized reference depth recall is measured
        against; ``peer_k`` (default ``k``) is how many results each
        queried peer — and the initiator's local execution — contributes.
        Setting ``peer_k < k`` models the regime where no single peer can
        satisfy the information need alone, which is where routing
        quality matters most.  ``cori_weighted_merge`` fuses results with
        each peer's CORI collection score as weight (classic distributed
        IR result merging) instead of the plain max-score merge; recall
        is unaffected (it is set-based), the merged *ranking* changes.
        """
        self._ensure_published(query)
        if peer_k is None:
            peer_k = k
        if peer_k <= 0:
            raise ValueError(f"peer_k must be positive, got {peer_k}")
        if initiator_id is None:
            peer_ids = sorted(self.peers)
            initiator_id = peer_ids[query.query_id % len(peer_ids)]
        before = self.cost.snapshot()
        local_view = self.local_view(
            query, initiator_id, k=peer_k, conjunctive=conjunctive
        )
        scoped = self.topology.assemble(
            query,
            requester=initiator_id,
            initiator=local_view,
            conjunctive=conjunctive,
            max_peers=max_peers,
            peer_list_limit=peer_list_limit,
        )
        context = self.topology.context_for(
            query, scoped, initiator=local_view, conjunctive=conjunctive
        )
        plan = self.topology.plan(context, scoped, selector, max_peers)
        selected = list(plan.selected)
        per_peer = self.execute(query, selected, k=peer_k, conjunctive=conjunctive)
        cost = self.cost.snapshot() - before

        reference = self.reference_topk(query, k=k, conjunctive=conjunctive)
        initiator = self._get_peer(initiator_id)
        local = tuple(
            initiator.answer_query(query.terms, k=peer_k, conjunctive=conjunctive)
        )
        covered = set(result_ids(local))
        recall_curve = [relative_recall(covered, reference)]
        for peer_id in selected:
            covered.update(result_ids(per_peer[peer_id]))
            recall_curve.append(relative_recall(covered, reference))
        if cori_weighted_merge:
            from ..routing.cori import cori_scores

            weights = cori_scores(context)
            weights[initiator_id] = 1.0  # local scores are trusted as-is
            merged = weighted_merge(
                {initiator_id: local, **per_peer}, weights, k=None
            )
        else:
            merged = merge_results([local, *per_peer.values()], k=None)
        return QueryOutcome(
            query=query,
            initiator_id=initiator_id,
            selected=tuple(selected),
            recall_at=tuple(recall_curve),
            merged=tuple(merged),
            reference_ids=reference,
            cost=cost,
            per_peer_results=per_peer,
            routing_stats=plan.routing_stats,
            clusters_ranked=plan.clusters_ranked,
            super_fetches=plan.super_fetches,
        )

    def run_query_networked(
        self,
        query: Query,
        selector: PeerSelector,
        *,
        faults: FaultPlan | None = None,
        profile: LatencyProfile | None = None,
        policy: RetryPolicy | None = None,
        seed: int = 0,
        initiator_id: str | None = None,
        max_peers: int = 10,
        k: int = 50,
        peer_k: int | None = None,
        conjunctive: bool = False,
        successor_fallback: bool = False,
        fallback_spares: int = 0,
    ) -> NetworkedQueryOutcome:
        """Run one query over the simulated network (:mod:`repro.simnet`).

        The three query phases — PeerList fetch over DHT hops, routing,
        forward+merge — execute as messages on a discrete-event
        transport, subject to ``faults`` (a
        :class:`~repro.simnet.faults.FaultPlan`), the wire ``profile``
        (a :class:`~repro.net.latency.LatencyProfile`), and the retry
        ``policy`` (a :class:`~repro.simnet.rpc.RetryPolicy`).  Returns
        a :class:`~repro.simnet.executor.NetworkedQueryOutcome`; with no
        faults its merged document ids equal :meth:`run_query`'s.
        ``successor_fallback`` and ``fallback_spares`` enable the churn
        robustness path (retry failed directory fetches at the ring
        successor; substitute dead selected peers with the next-ranked
        spares) — see :meth:`SimNetExecutor.submit`.  For
        concurrent workloads build a
        :class:`~repro.simnet.executor.SimNetExecutor` directly and
        reuse it across queries.
        """
        from ..simnet.executor import SimNetExecutor

        executor = SimNetExecutor(
            self, faults=faults, profile=profile, policy=policy, seed=seed
        )
        executor.submit(
            query,
            selector,
            initiator_id=initiator_id,
            max_peers=max_peers,
            k=k,
            peer_k=peer_k,
            conjunctive=conjunctive,
            successor_fallback=successor_fallback,
            fallback_spares=fallback_spares,
        )
        return executor.run()[0]

    # -- helpers ------------------------------------------------------------------

    def _ensure_published(self, query: Query) -> None:
        missing = set(query.terms) - self._published_terms
        if missing:
            raise RuntimeError(
                f"query terms never published to the directory: {sorted(missing)}; "
                "call engine.publish(terms) first"
            )

    def _get_peer(self, peer_id: str) -> Peer:
        try:
            return self.peers[peer_id]
        except KeyError:
            raise KeyError(f"unknown peer {peer_id!r}") from None

    def __repr__(self) -> str:
        return (
            f"MinervaEngine(peers={len(self.peers)}, spec={self.spec.label}, "
            f"ring={len(self.ring)})"
        )
