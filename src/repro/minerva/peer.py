"""A MINERVA peer: local collection, local index, published summaries.

Each peer autonomously crawls (here: is assigned) a document collection,
indexes it locally, and derives the per-term Posts it publishes to the
distributed directory.  At query time a peer either *initiates* a query
(fetching PeerLists, routing, merging) or *answers* one forwarded to it
(local top-k only).
"""

from __future__ import annotations

from collections.abc import Iterable

from ..ir.documents import Corpus, Document
from ..ir.index import InvertedIndex
from ..ir.scoring import Scorer
from ..ir.topk import ScoredDocument, execute_query
from ..synopses.base import SetSynopsis
from ..synopses.factory import SynopsisSpec
from ..synopses.histogram import ScoreHistogramSynopsis
from .posts import Post

__all__ = ["Peer"]


class Peer:
    """One autonomous peer with a local collection and synopsis config."""

    def __init__(
        self,
        peer_id: str,
        corpus: Corpus,
        *,
        spec: SynopsisSpec,
        scorer: Scorer | None = None,
        histogram_cells: int | None = None,
        index: InvertedIndex | None = None,
    ) -> None:
        if not peer_id:
            raise ValueError("peer_id must be non-empty")
        if index is not None and index.corpus is not corpus:
            raise ValueError("a prebuilt index must be over the peer's corpus")
        self.peer_id = peer_id
        self.corpus = corpus
        self.spec = spec
        self.histogram_cells = histogram_cells
        # Experiments comparing synopsis configurations over identical
        # collections inject a prebuilt index so it is built only once.
        self.index = index if index is not None else InvertedIndex(corpus, scorer)
        self._synopsis_cache: dict[str, SetSynopsis] = {}
        self._histogram_cache: dict[str, ScoreHistogramSynopsis] = {}

    # -- published summaries ------------------------------------------------

    def synopsis(self, term: str) -> SetSynopsis:
        """The per-term docID synopsis this peer publishes (cached)."""
        cached = self._synopsis_cache.get(term)
        if cached is None:
            cached = self.spec.build(self.index.doc_ids(term))
            self._synopsis_cache[term] = cached
        return cached

    def histogram_synopsis(self, term: str) -> ScoreHistogramSynopsis:
        """The score-histogram synopsis of Section 7.1 (cached).

        Requires the peer to be configured with ``histogram_cells``.
        """
        if self.histogram_cells is None:
            raise ValueError(
                f"peer {self.peer_id} was not configured with histogram_cells"
            )
        cached = self._histogram_cache.get(term)
        if cached is None:
            cached = ScoreHistogramSynopsis.from_scored_ids(
                self.index.scored_doc_ids(term, normalized=True),
                spec=self.spec,
                num_cells=self.histogram_cells,
            )
            self._histogram_cache[term] = cached
        return cached

    def build_post(self, term: str, *, with_histogram: bool = False) -> Post:
        """Assemble the Post for ``term`` from local index statistics."""
        return Post(
            peer_id=self.peer_id,
            term=term,
            cdf=self.index.document_frequency(term),
            max_score=self.index.max_score(term),
            avg_score=self.index.average_score(term),
            term_space_size=self.index.term_space_size,
            synopsis=self.synopsis(term),
            histogram=self.histogram_synopsis(term) if with_histogram else None,
        )

    # -- dynamics (evolving crawls) ------------------------------------------

    def add_documents(
        self, documents: Iterable[Document], *, drift_factor: float = 1.5
    ) -> list[str]:
        """Grow the local collection and report terms needing re-posting.

        An autonomously crawling peer's collection evolves; Section 9
        names "dynamic and automatic adaptation to evolving data" as the
        goal.  This rebuilds the local index (simple and correct; an
        incremental index is an optimization the simulation does not
        need), invalidates the synopsis caches, and returns the terms
        whose index lists drifted past ``drift_factor``
        (:func:`repro.core.adaptive.needs_repost`) — the Posts worth
        re-publishing to the directory.
        """
        from ..core.adaptive import needs_repost

        old_lengths = {
            term: self.index.document_frequency(term)
            for term in self.index.vocabulary
        }
        for document in documents:
            self.corpus.add(document)
        self.index = InvertedIndex(self.corpus, self.index.scorer)
        self._synopsis_cache.clear()
        self._histogram_cache.clear()
        drifted = []
        for term in self.index.vocabulary:
            if needs_repost(
                old_lengths.get(term, 0),
                self.index.document_frequency(term),
                drift_factor=drift_factor,
            ):
                drifted.append(term)
        return sorted(drifted)

    # -- query answering ---------------------------------------------------

    def answer_query(
        self, terms: tuple[str, ...], *, k: int = 10, conjunctive: bool = False
    ) -> list[ScoredDocument]:
        """Local top-k execution for a forwarded query."""
        return execute_query(self.index, terms, k=k, conjunctive=conjunctive)

    def local_doc_ids(self, term: str) -> frozenset[int]:
        return self.index.doc_ids(term)

    @property
    def collection_size(self) -> int:
        return len(self.corpus)

    def __repr__(self) -> str:
        return (
            f"Peer({self.peer_id!r}, docs={len(self.corpus)}, "
            f"spec={self.spec.label})"
        )
