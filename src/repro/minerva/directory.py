"""The distributed directory: PeerLists on a Chord ring (Section 4).

"A conceptually global but physically distributed directory, which is
layered on top of Chord, holds compact, aggregated information about the
peers' local indexes ... we use the Chord DHT to partition the term
space, such that every peer is responsible for the statistics and
metadata of a randomized subset of terms within the directory.  For
failure resilience and availability, the responsibility for a term can be
replicated across multiple peers."

Every publish and every PeerList fetch routes through the simulated ring
from the acting peer's own node and is charged to the cost model — hops
as ``dht_hop`` messages, payloads as ``post`` / ``peerlist_fetch``.
"""

from __future__ import annotations

from ..dht.ring import ChordRing
from ..net.cost import CostModel, MessageKinds
from ..synopses.columnstore import PeerIdTable
from .posts import PeerList, Post

__all__ = ["Directory"]


class Directory:
    """Term-partitioned Post storage over a Chord ring.

    All PeerLists created by this directory share one interned
    :class:`~repro.synopses.columnstore.PeerIdTable`, so a peer id is
    stored once network-wide and every per-term column indexes into the
    same table — the precondition for cross-term columnar routing.
    """

    def __init__(
        self,
        ring: ChordRing,
        *,
        cost: CostModel | None = None,
        replicas: int = 1,
        node_of_peer: dict[str, int] | None = None,
        peer_table: PeerIdTable | None = None,
    ) -> None:
        if replicas <= 0:
            raise ValueError(f"replicas must be positive, got {replicas}")
        self.ring = ring
        self.cost = cost or CostModel()
        self.replicas = replicas
        #: Maps peer ids to their ring node ids so lookups start at the
        #: acting peer's own position (realistic hop counts).
        self._node_of_peer = node_of_peer or {}
        #: Shared interned peer-id table for every PeerList this
        #: directory creates.
        self.peer_table = peer_table if peer_table is not None else PeerIdTable()

    def _start_node(self, peer_id: str | None) -> int | None:
        if peer_id is None:
            return None
        return self._node_of_peer.get(peer_id)

    # -- publishing ----------------------------------------------------------

    def publish(self, post: Post) -> None:
        """Route the Post to the term's responsible node(s) and store it."""
        lookup = self.ring.lookup(post.term, start_node=self._start_node(post.peer_id))
        self.cost.record(MessageKinds.DHT_HOP, count=lookup.hops)
        # One message (carrying the full payload) per replica.
        self.cost.record(
            MessageKinds.POST,
            bits=post.size_in_bits * self.replicas,
            count=self.replicas,
        )
        key = self.ring.key_id(post.term)
        for node in self.ring.replica_nodes(post.term, self.replicas):
            peer_list = node.store.get(key)
            if peer_list is None:
                peer_list = PeerList(term=post.term, peer_table=self.peer_table)
                node.store[key] = peer_list
            peer_list.add(post, retain=False)

    def publish_batch(self, posts: list[Post]) -> int:
        """Publish several Posts, batching per destination node.

        Section 7.2: "peers should batch multiple posts that are directed
        to the same recipient so that message sizes do indeed matter."
        Posts whose terms hash to the same directory node share one
        message (one routing trip, one per-message overhead); the payload
        bits are unchanged.  Returns the number of messages sent.
        """
        by_owner: dict[int, list[Post]] = {}
        hops_charged: set[int] = set()
        for post in posts:
            lookup = self.ring.lookup(
                post.term, start_node=self._start_node(post.peer_id)
            )
            # Route once per destination node, not once per post: after
            # the first lookup the peer knows the owner's address.
            if lookup.owner not in hops_charged:
                self.cost.record(MessageKinds.DHT_HOP, count=lookup.hops)
                hops_charged.add(lookup.owner)
            by_owner.setdefault(lookup.owner, []).append(post)
        messages = 0
        for owner, owner_posts in by_owner.items():
            total_bits = sum(post.size_in_bits for post in owner_posts)
            self.cost.record(
                MessageKinds.POST,
                bits=total_bits * self.replicas,
                count=self.replicas,
            )
            messages += self.replicas
            for post in owner_posts:
                key = self.ring.key_id(post.term)
                for node in self.ring.replica_nodes(post.term, self.replicas):
                    peer_list = node.store.get(key)
                    if peer_list is None:
                        peer_list = PeerList(
                            term=post.term, peer_table=self.peer_table
                        )
                        node.store[key] = peer_list
                    peer_list.add(post, retain=False)
        return messages

    # -- lookups --------------------------------------------------------------

    def peer_list(self, term: str, *, requester: str | None = None) -> PeerList:
        """Fetch the PeerList for ``term``, charging routing and payload.

        Returns an empty PeerList when no peer posted the term — the
        initiator learns the term is unknown network-wide.
        """
        lookup = self.ring.lookup(term, start_node=self._start_node(requester))
        self.cost.record(MessageKinds.DHT_HOP, count=lookup.hops)
        stored = self.ring.node(lookup.owner).store.get(self.ring.key_id(term))
        if stored is None:
            stored = PeerList(term=term, peer_table=self.peer_table)
        self.cost.record(MessageKinds.PEERLIST_FETCH, bits=stored.size_in_bits)
        return stored

    def peer_lists(
        self, terms: tuple[str, ...], *, requester: str | None = None
    ) -> dict[str, PeerList]:
        """Fetch PeerLists for all query terms (one DHT lookup each).

        Duplicates are fetched once; the returned dict preserves first-
        occurrence term order (not salted set order), so downstream
        order-sensitive derivations — CORI's last-write-wins
        ``average_term_space_size`` — are stable across processes.
        """
        return {
            term: self.peer_list(term, requester=requester)
            for term in dict.fromkeys(terms)
        }

    def peer_list_batch(
        self,
        term: str,
        *,
        offset: int,
        limit: int,
        requester: str | None = None,
    ) -> list[Post]:
        """Fetch one quality-ordered slice of a term's PeerList.

        Section 4: "the query initiator can decide to not retrieve the
        complete PeerLists, but only a subset, say the top-k peers from
        each list based on IR relevance measures".  The directory node
        serves posts ordered by descending ``max_score`` (ties broken by
        ``cdf`` then peer id); the initiator pays routing hops per batch
        request plus the payload of the returned slice only.

        The quality order is computed once per stored list — one lexsort
        over the packed score columns, cached inside the column store —
        and reused across batch requests from any requester until the
        term's columns next mutate, so repeated paging over the same term
        no longer re-sorts per request.
        """
        if offset < 0:
            raise ValueError(f"offset must be >= 0, got {offset}")
        if limit <= 0:
            raise ValueError(f"limit must be positive, got {limit}")
        lookup = self.ring.lookup(term, start_node=self._start_node(requester))
        self.cost.record(MessageKinds.DHT_HOP, count=lookup.hops)
        stored = self.ring.node(lookup.owner).store.get(self.ring.key_id(term))
        if stored is None:
            self.cost.record(MessageKinds.PEERLIST_FETCH, bits=0)
            return []
        batch = stored.top_by_quality(offset + limit)[offset:]
        self.cost.record(
            MessageKinds.PEERLIST_FETCH,
            bits=sum(post.size_in_bits for post in batch),
        )
        return batch

    def stored_list(self, term: str) -> PeerList | None:
        """The stored PeerList for ``term`` without charging any cost.

        Maintenance-path read: topology builds (cluster synopses,
        super-peer elections) and churn repairs consume directory state
        in place; only *query-time* fetches pay routing and payload.
        """
        lookup = self.ring.lookup(term)
        stored = self.ring.node(lookup.owner).store.get(self.ring.key_id(term))
        return stored if isinstance(stored, PeerList) else None

    def stored_terms(self) -> set[str]:
        """All terms any node currently stores (diagnostic helper)."""
        terms: set[str] = set()
        for node_id in self.ring.node_ids:
            for value in self.ring.node(node_id).store.values():
                if isinstance(value, PeerList):
                    terms.add(value.term)
        return terms
