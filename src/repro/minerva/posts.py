"""Directory payloads: per-term Posts and PeerLists (Section 4).

"Every peer publishes statistics, denoted as Posts, about every term in
its local index to the directory.  The peer onto which the term is hashed
maintains a PeerList of all postings for this term from all peers across
the network.  Posts contain contact information about the peer who posted
the summary together with statistics to calculate IR-style relevance
measures for a term, e.g., the length of the inverted index list for the
term, the maximum or average score among the term's inverted list
entries, etc."

In this reproduction a Post additionally carries the per-term docID
synopsis (Section 1.2) and, optionally, the score-histogram synopsis of
Section 7.1.

Storage is columnar (:mod:`repro.synopses.columnstore`): a PeerList is a
thin view over a :class:`~repro.synopses.columnstore.TermColumns` —
packed metadata arrays plus one matrix of packed synopses — so 10^5-peer
directories fit in contiguous memory and the routing fast path attaches
to the stored matrices directly.  ``Post`` objects materialize lazily
(and are cached) for code that still walks per-peer objects;
``add(post, retain=True)`` additionally keeps the caller's exact object,
preserving the historical identity semantics of hand-built lists.
"""

from __future__ import annotations

from collections.abc import MutableMapping
from dataclasses import dataclass
from typing import Any, Iterator

from ..synopses.base import SetSynopsis
from ..synopses.columnstore import PeerIdTable, TermColumns
from ..synopses.histogram import ScoreHistogramSynopsis

__all__ = ["Post", "PeerList", "POST_STATS_BITS"]

#: Wire size of a Post's fixed statistics block: peer contact info plus
#: (cdf, max_score, avg_score, |V|) — 5 fields at 32 bits each.
POST_STATS_BITS = 160


@dataclass(frozen=True)
class Post:
    """One peer's published summary for one term."""

    peer_id: str
    term: str
    cdf: int
    max_score: float
    avg_score: float
    term_space_size: int
    synopsis: SetSynopsis | None = None
    histogram: ScoreHistogramSynopsis | None = None

    def __post_init__(self) -> None:
        if self.cdf < 0:
            raise ValueError(f"cdf must be >= 0, got {self.cdf}")
        if self.max_score < 0.0 or self.avg_score < 0.0:
            raise ValueError("scores must be >= 0")
        if self.term_space_size < 0:
            raise ValueError(
                f"term_space_size must be >= 0, got {self.term_space_size}"
            )

    @property
    def size_in_bits(self) -> int:
        """Wire size: fixed stats plus any attached synopses."""
        bits = POST_STATS_BITS
        if self.synopsis is not None:
            bits += self.synopsis.size_in_bits
        if self.histogram is not None:
            bits += self.histogram.size_in_bits
        return bits


class _PostsView(MutableMapping[str, Post]):
    """Dict-compatible ``peer_id -> Post`` facade over the columns.

    Keeps the historical ``peer_list.posts`` surface (lookups, ``del``,
    iteration in row order) while the actual storage stays packed.
    """

    __slots__ = ("_owner",)

    def __init__(self, owner: "PeerList") -> None:
        self._owner = owner

    def __getitem__(self, peer_id: str) -> Post:
        post = self._owner.get(peer_id)
        if post is None:
            raise KeyError(peer_id)
        return post

    def __setitem__(self, peer_id: str, post: Post) -> None:
        if peer_id != post.peer_id:
            raise ValueError(
                f"key {peer_id!r} does not match post.peer_id {post.peer_id!r}"
            )
        self._owner.add(post)

    def __delitem__(self, peer_id: str) -> None:
        if not self._owner._remove(peer_id):
            raise KeyError(peer_id)

    def __iter__(self) -> Iterator[str]:
        columns = self._owner.columns
        table = columns.table
        for interned in columns.interned_ids().tolist():
            yield table.name(interned)

    def __len__(self) -> int:
        return len(self._owner.columns)


class PeerList:
    """All Posts the directory holds for one term, stored columnar."""

    __slots__ = ("term", "_columns", "_retained", "_cache")

    def __init__(
        self,
        term: str,
        posts: dict[str, Post] | None = None,
        *,
        peer_table: PeerIdTable | None = None,
    ) -> None:
        self.term = term
        table = peer_table if peer_table is not None else PeerIdTable()
        self._columns = TermColumns(term, table)
        #: Posts added with ``retain=True`` — exact caller objects.
        self._retained: dict[str, Post] = {}
        #: Lazily materialized Posts (dropped on overwrite/removal).
        self._cache: dict[str, Post] = {}
        if posts:
            for post in posts.values():
                self.add(post)

    # -- columnar surface -------------------------------------------------

    @property
    def columns(self) -> TermColumns:
        """The packed per-term column store backing this list."""
        return self._columns

    @property
    def peer_table(self) -> PeerIdTable:
        return self._columns.table

    @property
    def posts(self) -> _PostsView:
        """Mapping view ``peer_id -> Post`` (materializes lazily)."""
        return _PostsView(self)

    # -- mutation ---------------------------------------------------------

    def add(self, post: Post, *, retain: bool = True) -> None:
        """Insert or refresh a peer's Post (re-posting overwrites).

        ``retain=False`` (the directory ingest path) stores only the
        packed columns; the Post object is released and an equal one is
        rebuilt on demand.  ``retain=True`` additionally keeps the exact
        object so ``get`` returns it by identity.
        """
        if post.term != self.term:
            raise ValueError(
                f"post for term {post.term!r} added to PeerList of {self.term!r}"
            )
        self._columns.upsert(
            post.peer_id,
            post.cdf,
            post.max_score,
            post.avg_score,
            post.term_space_size,
            post.synopsis,
            post.histogram,
        )
        self._cache.pop(post.peer_id, None)
        if retain:
            self._retained[post.peer_id] = post
        else:
            self._retained.pop(post.peer_id, None)

    def _remove(self, peer_id: str) -> bool:
        removed = self._columns.remove(peer_id)
        if removed:
            self._retained.pop(peer_id, None)
            self._cache.pop(peer_id, None)
        return removed

    # -- lookups ----------------------------------------------------------

    def get(self, peer_id: str) -> Post | None:
        retained = self._retained.get(peer_id)
        if retained is not None:
            return retained
        cached = self._cache.get(peer_id)
        if cached is not None:
            return cached
        interned = self._columns.table.lookup(peer_id)
        if interned is None:
            return None
        row = self._columns.row_for(interned)
        if row is None:
            return None
        return self._materialize(row, peer_id)

    def _materialize(self, row: int, peer_id: str) -> Post:
        name, cdf, max_score, avg_score, term_space, synopsis, histogram = (
            self._columns.post_fields(row)
        )
        post = Post(
            peer_id=name,
            term=self.term,
            cdf=cdf,
            max_score=max_score,
            avg_score=avg_score,
            term_space_size=term_space,
            synopsis=synopsis,
            histogram=histogram,
        )
        self._cache[peer_id] = post
        return post

    def _post_at(self, row: int) -> Post:
        peer_id = self._columns.table.name(int(self._columns.interned_ids()[row]))
        retained = self._retained.get(peer_id)
        if retained is not None:
            return retained
        cached = self._cache.get(peer_id)
        if cached is not None:
            return cached
        return self._materialize(row, peer_id)

    @property
    def peer_ids(self) -> frozenset[str]:
        columns = self._columns
        if len(columns) == 0:
            return frozenset()
        names = columns.table.names_array()[columns.interned_ids()]
        return frozenset(names.tolist())

    @property
    def collection_frequency(self) -> int:
        """Number of peers holding the term — CORI's ``cf_t``."""
        return len(self._columns)

    @property
    def size_in_bits(self) -> int:
        columns = self._columns
        return (
            POST_STATS_BITS * len(columns)
            + columns.synopsis_bits()
            + columns.histogram_bits()
        )

    def top_by_quality(self, count: int) -> list[Post]:
        """The ``count`` posts with highest max-score (a cheap quality cut).

        Section 4: "the query initiator can decide to not retrieve the
        complete PeerLists, but only a subset, say the top-k peers from
        each list based on IR relevance measures".  The quality order is
        one cached lexsort over the packed score columns, reused across
        calls until the list mutates.
        """
        if count < 0:
            raise ValueError(f"count must be >= 0, got {count}")
        order = self._columns.quality_order()
        return [self._post_at(row) for row in order[:count].tolist()]

    def __len__(self) -> int:
        return len(self._columns)

    def __iter__(self) -> Iterator[Post]:
        for row in range(len(self._columns)):
            yield self._post_at(row)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PeerList):
            return NotImplemented
        return self.term == other.term and dict(self.posts) == dict(other.posts)

    def __repr__(self) -> str:
        return f"PeerList(term={self.term!r}, peers={len(self)})"

    # -- pickling ----------------------------------------------------------

    def __getstate__(self) -> dict[str, Any]:
        return {
            "term": self.term,
            "columns": self._columns,
            "retained": self._retained,
        }

    def __setstate__(self, state: dict[str, Any]) -> None:
        self.term = state["term"]
        self._columns = state["columns"]
        self._retained = state["retained"]
        self._cache = {}
