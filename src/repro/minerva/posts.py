"""Directory payloads: per-term Posts and PeerLists (Section 4).

"Every peer publishes statistics, denoted as Posts, about every term in
its local index to the directory.  The peer onto which the term is hashed
maintains a PeerList of all postings for this term from all peers across
the network.  Posts contain contact information about the peer who posted
the summary together with statistics to calculate IR-style relevance
measures for a term, e.g., the length of the inverted index list for the
term, the maximum or average score among the term's inverted list
entries, etc."

In this reproduction a Post additionally carries the per-term docID
synopsis (Section 1.2) and, optionally, the score-histogram synopsis of
Section 7.1.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..synopses.base import SetSynopsis
from ..synopses.histogram import ScoreHistogramSynopsis

__all__ = ["Post", "PeerList", "POST_STATS_BITS"]

#: Wire size of a Post's fixed statistics block: peer contact info plus
#: (cdf, max_score, avg_score, |V|) — 5 fields at 32 bits each.
POST_STATS_BITS = 160


@dataclass(frozen=True)
class Post:
    """One peer's published summary for one term."""

    peer_id: str
    term: str
    cdf: int
    max_score: float
    avg_score: float
    term_space_size: int
    synopsis: SetSynopsis | None = None
    histogram: ScoreHistogramSynopsis | None = None

    def __post_init__(self) -> None:
        if self.cdf < 0:
            raise ValueError(f"cdf must be >= 0, got {self.cdf}")
        if self.max_score < 0.0 or self.avg_score < 0.0:
            raise ValueError("scores must be >= 0")
        if self.term_space_size < 0:
            raise ValueError(
                f"term_space_size must be >= 0, got {self.term_space_size}"
            )

    @property
    def size_in_bits(self) -> int:
        """Wire size: fixed stats plus any attached synopses."""
        bits = POST_STATS_BITS
        if self.synopsis is not None:
            bits += self.synopsis.size_in_bits
        if self.histogram is not None:
            bits += self.histogram.size_in_bits
        return bits


@dataclass
class PeerList:
    """All Posts the directory holds for one term."""

    term: str
    posts: dict[str, Post] = field(default_factory=dict)

    def add(self, post: Post) -> None:
        """Insert or refresh a peer's Post (re-posting overwrites)."""
        if post.term != self.term:
            raise ValueError(
                f"post for term {post.term!r} added to PeerList of {self.term!r}"
            )
        self.posts[post.peer_id] = post

    def get(self, peer_id: str) -> Post | None:
        return self.posts.get(peer_id)

    @property
    def peer_ids(self) -> frozenset[str]:
        return frozenset(self.posts)

    @property
    def collection_frequency(self) -> int:
        """Number of peers holding the term — CORI's ``cf_t``."""
        return len(self.posts)

    @property
    def size_in_bits(self) -> int:
        return sum(post.size_in_bits for post in self.posts.values())

    def top_by_quality(self, count: int) -> list[Post]:
        """The ``count`` posts with highest max-score (a cheap quality cut).

        Section 4: "the query initiator can decide to not retrieve the
        complete PeerLists, but only a subset, say the top-k peers from
        each list based on IR relevance measures".
        """
        if count < 0:
            raise ValueError(f"count must be >= 0, got {count}")
        ranked = sorted(
            self.posts.values(),
            key=lambda post: (post.max_score, post.cdf, post.peer_id),
            reverse=True,
        )
        return ranked[:count]

    def __len__(self) -> int:
        return len(self.posts)

    def __iter__(self):
        return iter(self.posts.values())
