"""The MINERVA P2P Web search testbed (Section 4)."""

from .directory import Directory
from .engine import MinervaEngine, QueryOutcome
from .peer import Peer
from .posts import POST_STATS_BITS, PeerList, Post
from .stats import GlobalTermStats, global_term_statistics
from .topk_peers import TopKPeerResult, fetch_top_k_peers

__all__ = [
    "Post",
    "PeerList",
    "POST_STATS_BITS",
    "Peer",
    "Directory",
    "MinervaEngine",
    "QueryOutcome",
    "GlobalTermStats",
    "global_term_statistics",
    "TopKPeerResult",
    "fetch_top_k_peers",
]
