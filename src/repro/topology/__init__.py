"""Routing topologies: who assembles candidate peers for a query.

The engine, the simnet executor, and the serving frontend all route
through one :class:`RoutingTopology` object.  :class:`FlatTopology`
reproduces the original flat-directory behavior bit-for-bit;
:class:`SuperPeerTopology` adds the hierarchical super-peer tier
(clustered peers, merged cluster synopses, two-phase IQN).
"""

from .base import (
    ReElection,
    RoutingTopology,
    ScopedLists,
    TopologyHost,
    TopologyPlan,
)
from .clustering import Cluster
from .flat import FlatTopology
from .superpeer import SuperPeerTopology

__all__ = [
    "Cluster",
    "FlatTopology",
    "ReElection",
    "RoutingTopology",
    "ScopedLists",
    "SuperPeerTopology",
    "TopologyHost",
    "TopologyPlan",
]
