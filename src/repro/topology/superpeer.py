"""Two-level super-peer routing (Ismail et al., PAPERS.md).

Peers are grouped by synopsis similarity (:mod:`.clustering`), each
cluster elects the highest-capacity member as its super-peer, and the
super-peers jointly hold a *cluster directory*: per term, one merged
Post per cluster — ``cdf`` summed, scores aggregated, synopsis =
union-fold of the members' synopses computed on the packed column
matrices — stored in :class:`~repro.minerva.posts.PeerList`\\ s backed
by the columnar :class:`~repro.synopses.columnstore.TermColumns` store
on a private cluster-id table, so cluster ranking itself runs on the
columnar fast path.

Query assembly is two-phase IQN under a split budget:

1. **Rank clusters** — the initiator asks its super-peer for the
   cluster directory of the query terms (one ``cluster_fetch`` message)
   and runs IQN over the merged cluster synopses, selecting at most the
   cluster budget (default ``isqrt(max_peers)``).
2. **Rank members** — each winning cluster's super-peer ships its
   members' restricted PeerList entries back (one ``member_fetch`` per
   winner), and the query's selector ranks only those peers under the
   full peer budget.

Against the flat topology — which pays per-term DHT routing hops plus
the *complete* PeerList payload of every term — the super-peer tier
sends ``1 + |winners|`` messages carrying only the winning clusters'
entries, which is where the messages-per-query win at large peer
counts comes from (``experiments/hierarchy.py``).

Churn: :meth:`SuperPeerTopology.handle_peer_down` marks the peer dead,
rebuilds its cluster's merged posts from live members, and — when the
dead peer was the super — deterministically re-elects (same capacity
rule over the survivors).  :class:`~repro.churn.service.ChurnService`
surfaces that as a ``reelect`` :class:`DirectoryEvent` so serving plan
caches can invalidate exactly the affected cluster.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING

import numpy as np

from ..datasets.queries import Query
from ..minerva.posts import PeerList, Post
from ..net.cost import MessageKinds
from ..routing.base import LocalView, PeerSelector, RoutingContext
from ..synopses.columnstore import PeerIdTable, TermColumns
from .base import ReElection, RoutingTopology, ScopedLists
from .clustering import (
    Cluster,
    cluster_peers,
    default_num_clusters,
    elect_super_peer,
    group_fold_synopses,
    materialize_rows,
    peer_capacities,
    peer_profiles,
)

if TYPE_CHECKING:
    from ..net.latency import LatencyProfile

__all__ = ["SuperPeerTopology"]

#: Cluster budget when neither the topology nor the query pins one.
DEFAULT_CLUSTER_BUDGET = 3


class SuperPeerTopology(RoutingTopology):
    """Hierarchical topology: clusters, super-peers, two-phase routing.

    Parameters
    ----------
    num_clusters:
        Cluster count; ``None`` uses ``default_num_clusters`` (the
        bounded sqrt heuristic over the directory's peer count).
    cluster_budget:
        Clusters selected in phase one; ``None`` derives
        ``max(1, isqrt(max_peers))`` from the query's peer budget.
    refine_rounds / seed:
        Clustering knobs — see :mod:`.clustering`; everything is
        deterministic in these plus the directory contents.
    cluster_selector:
        Phase-one selector over merged cluster synopses (default: a
        fresh :class:`~repro.core.iqn.IQNRouter`).
    intra_profile / inter_profile:
        Optional latency profiles the simnet transport applies to
        intra- vs inter-cluster links (``None`` keeps the transport's
        base profile for that class of link).
    """

    hierarchical = True

    def __init__(
        self,
        *,
        num_clusters: int | None = None,
        cluster_budget: int | None = None,
        refine_rounds: int = 2,
        seed: int = 0,
        cluster_selector: PeerSelector | None = None,
        intra_profile: "LatencyProfile | None" = None,
        inter_profile: "LatencyProfile | None" = None,
    ) -> None:
        super().__init__()
        if num_clusters is not None and num_clusters <= 0:
            raise ValueError(f"num_clusters must be positive, got {num_clusters}")
        if cluster_budget is not None and cluster_budget <= 0:
            raise ValueError(
                f"cluster_budget must be positive, got {cluster_budget}"
            )
        if refine_rounds < 0:
            raise ValueError(f"refine_rounds must be >= 0, got {refine_rounds}")
        self.num_clusters = num_clusters
        self.cluster_budget = cluster_budget
        self.refine_rounds = refine_rounds
        self.seed = seed
        self._cluster_selector = cluster_selector
        self.intra_profile = intra_profile
        self.inter_profile = inter_profile
        self._clusters: tuple[Cluster, ...] | None = None
        self._cluster_of: dict[str, str] = {}
        self._super_of: dict[str, str] = {}
        self._members: dict[str, tuple[str, ...]] = {}
        self._capacity: dict[str, int] = {}
        self._cluster_table = PeerIdTable()
        self._cluster_lists: dict[str, PeerList] = {}
        self._down: set[str] = set()

    # -- configuration ---------------------------------------------------

    @property
    def cluster_selector(self) -> PeerSelector:
        if self._cluster_selector is None:
            from ..core.iqn import IQNRouter  # late: avoids core import cycle

            self._cluster_selector = IQNRouter()
        return self._cluster_selector

    def resolve_cluster_budget(self, max_peers: int | None) -> int:
        if self.cluster_budget is not None:
            return self.cluster_budget
        if max_peers is not None and max_peers > 0:
            return max(1, math.isqrt(max_peers))
        return DEFAULT_CLUSTER_BUDGET

    def cache_signature(self) -> str:
        return (
            f"SuperPeerTopology(clusters={self.num_clusters},"
            f" budget={self.cluster_budget},"
            f" rounds={self.refine_rounds},"
            f" seed={self.seed},"
            f" cluster_selector={self.cluster_selector.cache_signature()})"
        )

    # -- cluster state ---------------------------------------------------

    def _on_bind(self) -> None:
        self.invalidate()

    def invalidate(self) -> None:
        """Drop cluster state; the next query rebuilds from the directory."""
        self._clusters = None
        self._cluster_of = {}
        self._super_of = {}
        self._members = {}
        self._capacity = {}
        self._cluster_table = PeerIdTable()
        self._cluster_lists = {}
        self._down = set()

    @property
    def clusters(self) -> tuple[Cluster, ...]:
        return self.ensure_clusters()

    def ensure_clusters(self) -> tuple[Cluster, ...]:
        if self._clusters is None:
            self._build()
        assert self._clusters is not None
        return self._clusters

    def cluster_of(self, peer_id: str) -> str | None:
        self.ensure_clusters()
        return self._cluster_of.get(peer_id)

    def super_peer_of(self, peer_id: str) -> str | None:
        """The super-peer serving ``peer_id``'s cluster directory."""
        label = self.cluster_of(peer_id)
        return None if label is None else self._super_of.get(label)

    def super_of_cluster(self, label: str) -> str:
        self.ensure_clusters()
        return self._super_of[label]

    def members_of(self, label: str) -> tuple[str, ...]:
        self.ensure_clusters()
        return self._members.get(label, ())

    def live_members(self, label: str) -> tuple[str, ...]:
        return tuple(
            peer_id
            for peer_id in self.members_of(label)
            if peer_id not in self._down
        )

    def _stored_columns(self) -> list[tuple[str, TermColumns]]:
        directory = self.host.directory
        out: list[tuple[str, TermColumns]] = []
        for term in sorted(directory.stored_terms()):
            stored = directory.stored_list(term)
            if stored is not None and len(stored.columns):
                out.append((term, stored.columns))
        return out

    def _build(self) -> None:
        directory = self.host.directory
        table = directory.peer_table
        term_columns = self._stored_columns()
        if not term_columns or not len(table):
            self._clusters = ()
            return
        columns = [tc for _, tc in term_columns]
        profiles, template = peer_profiles(columns, table)
        capacity = peer_capacities(columns, table)
        k = (
            self.num_clusters
            if self.num_clusters is not None
            else default_num_clusters(len(table))
        )
        assignment = cluster_peers(
            profiles,
            k,
            template,
            seed=self.seed,
            refine_rounds=self.refine_rounds,
        )
        # Compact away empty clusters, relabeling in original index order
        # so labels are stable in (directory, seed).
        present = sorted(set(assignment.tolist()))
        remap = {original: compact for compact, original in enumerate(present)}
        compact_assignment = np.array(
            [remap[value] for value in assignment.tolist()], dtype=np.int64
        )
        width = max(3, len(str(max(1, len(present) - 1))))
        labels = [f"c{index:0{width}d}" for index in range(len(present))]
        members_by: dict[int, list[str]] = {i: [] for i in range(len(present))}
        for interned, compact in enumerate(compact_assignment.tolist()):
            members_by[compact].append(table.name(interned))
        self._capacity = {
            table.name(interned): int(capacity[interned])
            for interned in range(len(table))
        }
        clusters: list[Cluster] = []
        self._cluster_of = {}
        self._super_of = {}
        self._members = {}
        for index, label in enumerate(labels):
            members = tuple(sorted(members_by[index]))
            super_peer = elect_super_peer(
                members, lambda peer_id: self._capacity.get(peer_id, 0)
            )
            clusters.append(
                Cluster(label=label, members=members, super_peer=super_peer)
            )
            self._members[label] = members
            self._super_of[label] = super_peer
            for peer_id in members:
                self._cluster_of[peer_id] = label
        self._clusters = tuple(clusters)
        self._down = set()
        self._build_cluster_lists(term_columns, compact_assignment, labels)

    def _build_cluster_lists(
        self,
        term_columns: list[tuple[str, TermColumns]],
        assignment: np.ndarray,
        labels: list[str],
    ) -> None:
        """One merged Post per (term, cluster), packed-column fold."""
        num_groups = len(labels)
        self._cluster_table = PeerIdTable()
        self._cluster_lists = {}
        for term, tc in term_columns:
            groups = assignment[tc.interned_ids()]
            counts = np.bincount(groups, minlength=num_groups)
            cdf = np.bincount(
                groups, weights=tc.cdf_values(), minlength=num_groups
            )
            max_scores = np.zeros(num_groups, dtype=np.float64)
            np.maximum.at(max_scores, groups, tc.max_scores())
            weighted_avg = np.bincount(
                groups,
                weights=tc.avg_scores() * tc.cdf_values(),
                minlength=num_groups,
            )
            term_space = np.bincount(
                groups, weights=tc.term_space_values(), minlength=num_groups
            )
            column = tc.synopsis_column
            mask = tc.synopsis_flags()
            synopses = None
            synopsis_counts = np.zeros(num_groups, dtype=np.int64)
            if column is not None and mask.any():
                merged = group_fold_synopses(
                    column,
                    column.rows(len(tc))[mask],
                    groups[mask],
                    num_groups,
                )
                synopses = materialize_rows(column, merged)
                synopsis_counts = np.bincount(
                    groups[mask], minlength=num_groups
                )
            peer_list = PeerList(term=term, peer_table=self._cluster_table)
            for group in range(num_groups):
                if counts[group] == 0:
                    continue
                total_cdf = int(cdf[group])
                peer_list.add(
                    Post(
                        peer_id=labels[group],
                        term=term,
                        cdf=total_cdf,
                        max_score=float(max_scores[group]),
                        avg_score=(
                            float(weighted_avg[group] / cdf[group])
                            if cdf[group] > 0
                            else 0.0
                        ),
                        term_space_size=int(term_space[group]),
                        synopsis=(
                            synopses[group]
                            if synopses is not None and synopsis_counts[group]
                            else None
                        ),
                    ),
                    retain=False,
                )
            self._cluster_lists[term] = peer_list

    def _rebuild_cluster_entry(self, label: str) -> tuple[str, ...]:
        """Recompute one cluster's merged posts from live members.

        Object-level union over the handful of posts one cluster holds —
        the packed group-fold is for the full build, this is the churn
        repair path.  Returns the touched terms, sorted.
        """
        directory = self.host.directory
        live = self.live_members(label)
        touched: list[str] = []
        for term in sorted(self._cluster_lists):
            peer_list = self._cluster_lists[term]
            stored = directory.stored_list(term)
            posts = []
            if stored is not None:
                for member in live:
                    post = stored.get(member)
                    if post is not None:
                        posts.append(post)
            had = peer_list.get(label) is not None
            if not posts:
                if had:
                    del peer_list.posts[label]
                    touched.append(term)
                continue
            synopsis = None
            with_synopsis = [p.synopsis for p in posts if p.synopsis is not None]
            if with_synopsis:
                synopsis = with_synopsis[0]
                for other in with_synopsis[1:]:
                    synopsis = synopsis.union(other)
            total_cdf = sum(post.cdf for post in posts)
            weighted = sum(post.avg_score * post.cdf for post in posts)
            peer_list.add(
                Post(
                    peer_id=label,
                    term=term,
                    cdf=total_cdf,
                    max_score=max(post.max_score for post in posts),
                    avg_score=(weighted / total_cdf) if total_cdf else 0.0,
                    term_space_size=sum(post.term_space_size for post in posts),
                    synopsis=synopsis,
                ),
                retain=False,
            )
            touched.append(term)
        return tuple(touched)

    # -- query pipeline --------------------------------------------------

    def cluster_peer_lists(
        self, terms: tuple[str, ...]
    ) -> tuple[dict[str, PeerList], int]:
        """The cluster directory for ``terms`` plus its wire bits."""
        self.ensure_clusters()
        lists: dict[str, PeerList] = {}
        bits = 0
        for term in dict.fromkeys(terms):
            peer_list = self._cluster_lists.get(term)
            if peer_list is None:
                peer_list = PeerList(term=term, peer_table=self._cluster_table)
            lists[term] = peer_list
            bits += peer_list.size_in_bits
        return lists, bits

    def rank_clusters(
        self,
        query: Query,
        *,
        initiator: LocalView | None = None,
        conjunctive: bool = False,
        budget: int = DEFAULT_CLUSTER_BUDGET,
    ) -> list[str]:
        """Phase one: IQN over the merged cluster synopses."""
        clusters = self.ensure_clusters()
        if not clusters:
            return []
        cluster_lists, _ = self.cluster_peer_lists(query.terms)
        context = RoutingContext(
            query=query,
            peer_lists=cluster_lists,
            num_peers=len(clusters),
            spec=self.host.spec,
            initiator=initiator,
            conjunctive=conjunctive,
        )
        return self.cluster_selector.rank(context, budget)

    def member_posts(
        self, label: str, terms: tuple[str, ...]
    ) -> tuple[dict[str, list[Post]], int]:
        """One winning cluster's restricted per-term posts + wire bits."""
        directory = self.host.directory
        live = self.live_members(label)
        out: dict[str, list[Post]] = {}
        bits = 0
        for term in dict.fromkeys(terms):
            stored = directory.stored_list(term)
            posts: list[Post] = []
            if stored is not None:
                for member in live:
                    post = stored.get(member)
                    if post is not None:
                        posts.append(post)
                        bits += post.size_in_bits
            out[term] = posts
        return out, bits

    def assemble(
        self,
        query: Query,
        *,
        requester: str | None = None,
        initiator: LocalView | None = None,
        conjunctive: bool = False,
        max_peers: int | None = None,
        peer_list_limit: int | None = None,
        peer_list_batch_size: int = 8,
    ) -> ScopedLists:
        del requester, peer_list_batch_size
        if peer_list_limit is not None:
            raise ValueError(
                "peer_list_limit is a flat-directory optimization; "
                "SuperPeerTopology already scopes lists via cluster routing"
            )
        directory = self.host.directory
        budget = self.resolve_cluster_budget(max_peers)
        winners = self.rank_clusters(
            query, initiator=initiator, conjunctive=conjunctive, budget=budget
        )
        _, cluster_bits = self.cluster_peer_lists(query.terms)
        directory.cost.record(MessageKinds.CLUSTER_FETCH, bits=cluster_bits)
        unique_terms = tuple(dict.fromkeys(query.terms))
        peer_lists = {
            term: PeerList(term=term, peer_table=directory.peer_table)
            for term in unique_terms
        }
        scope: set[str] = set()
        for label in winners:
            posts_by_term, member_bits = self.member_posts(label, unique_terms)
            directory.cost.record(MessageKinds.MEMBER_FETCH, bits=member_bits)
            scope.update(self.live_members(label))
            for term, posts in posts_by_term.items():
                for post in posts:
                    peer_lists[term].add(post, retain=False)
        return ScopedLists(
            peer_lists=peer_lists,
            scope=frozenset(scope),
            clusters_ranked=tuple(winners),
            super_fetches=1 + len(winners),
        )

    # -- churn -----------------------------------------------------------

    def handle_peer_down(self, peer_id: str) -> ReElection | None:
        if self._clusters is None:
            return None  # never built — nothing to maintain yet
        label = self._cluster_of.get(peer_id)
        if label is None or peer_id in self._down:
            return None
        self._down.add(peer_id)
        terms = self._rebuild_cluster_entry(label)
        if self._super_of.get(label) != peer_id:
            return None
        live = self.live_members(label)
        if not live:
            return None  # whole cluster gone; its entries already dropped
        new_super = elect_super_peer(
            live, lambda member: self._capacity.get(member, 0)
        )
        self._super_of[label] = new_super
        self._clusters = tuple(
            cluster
            if cluster.label != label
            else Cluster(
                label=label, members=cluster.members, super_peer=new_super
            )
            for cluster in self._clusters
        )
        return ReElection(
            cluster=label,
            old_super=peer_id,
            new_super=new_super,
            members=live,
            terms=terms,
        )

    def handle_peer_up(self, peer_id: str) -> None:
        if self._clusters is None or peer_id not in self._down:
            return
        self._down.discard(peer_id)
        label = self._cluster_of.get(peer_id)
        if label is not None:
            self._rebuild_cluster_entry(label)

    # -- simnet latency --------------------------------------------------

    def latency_profile_of(
        self, src: str, dst: str
    ) -> "LatencyProfile | None":
        """Intra- vs inter-cluster link profile (None = transport base)."""
        if self.intra_profile is None and self.inter_profile is None:
            return None
        source = self._cluster_of.get(src)
        target = self._cluster_of.get(dst)
        if source is None or target is None or source != target:
            return self.inter_profile
        return self.intra_profile
