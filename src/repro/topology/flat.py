"""The flat single-level directory topology (the paper's architecture).

Candidate assembly is exactly what :meth:`MinervaEngine.make_context`
always did: one full PeerList fetch per query term (or, with
``peer_list_limit``, the distributed quality-ordered top-k fetch of
:mod:`repro.minerva.topk_peers`).  Plans, costs, and outcomes are
bit-identical to the pre-topology code — the equivalence tests in
``tests/topology/test_flat_equivalence.py`` pin this.
"""

from __future__ import annotations

from ..datasets.queries import Query
from ..minerva.posts import PeerList
from ..routing.base import LocalView
from .base import RoutingTopology, ScopedLists

__all__ = ["FlatTopology"]


class FlatTopology(RoutingTopology):
    """One global directory; every peer is a routing candidate."""

    hierarchical = False

    def assemble(
        self,
        query: Query,
        *,
        requester: str | None = None,
        initiator: LocalView | None = None,
        conjunctive: bool = False,
        max_peers: int | None = None,
        peer_list_limit: int | None = None,
        peer_list_batch_size: int = 8,
    ) -> ScopedLists:
        del initiator, conjunctive, max_peers  # flat assembly is unscoped
        directory = self.host.directory
        if peer_list_limit is not None:
            from ..minerva.topk_peers import fetch_top_k_peers

            result = fetch_top_k_peers(
                directory,
                query.terms,
                peer_list_limit,
                batch_size=peer_list_batch_size,
                requester=requester,
            )
            peer_lists = {}
            for term in query.terms:
                partial = PeerList(term=term, peer_table=directory.peer_table)
                for post in result.posts_by_term.get(term, {}).values():
                    partial.add(post)
                peer_lists[term] = partial
        else:
            peer_lists = {
                term: directory.peer_list(term, requester=requester)
                for term in query.terms
            }
        return ScopedLists(peer_lists=peer_lists)

    def cache_signature(self) -> str:
        return "FlatTopology()"
