"""Deterministic peer clustering by synopsis similarity.

Each peer's *profile* is the union-fold of its per-term synopses in
packed-matrix form — the same per-family union kernels the routing fast
path uses (MIPs: position-wise ``min``, LogLog: register-wise ``max``,
Bloom / hash sketches: bitwise ``or``) applied across every term column
the directory stores.  Peers holding similar content produce similar
profiles, so profile resemblance recovers topical groups:

- bitset families (Bloom, hash sketches): Broder resemblance
  ``popcount(a & b) / popcount(a | b)``;
- MIPs: the classic matching-minima fraction;
- LogLog: matching-register fraction (registers carry no set identity,
  so this is a similarity proxy — adequate for grouping, documented as
  such).

Clustering is seeded medoid assignment plus a few rounds of
fold-centroid refinement; every tie breaks toward the lowest cluster
index, so the assignment is a pure function of (columns, k, seed) at
any worker count.  Super-peer election picks the highest-capacity
member (total posted ``cdf``), ties to the smallest peer id — the same
rule re-elections apply after churn.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from ..parallel.seeding import derive_seed
from ..synopses.base import SetSynopsis
from ..synopses.columnstore import (
    LogLogColumn,
    MipsColumn,
    PeerIdTable,
    SynopsisColumn,
    TermColumns,
)

__all__ = [
    "Cluster",
    "default_num_clusters",
    "peer_profiles",
    "peer_capacities",
    "cluster_peers",
    "elect_super_peer",
    "group_fold_synopses",
    "materialize_rows",
]


@dataclass(frozen=True)
class Cluster:
    """One super-peer cluster: a label, its members, and its super."""

    label: str
    members: tuple[str, ...]
    super_peer: str


def default_num_clusters(num_peers: int) -> int:
    """The sqrt heuristic, bounded so huge directories stay tractable."""
    if num_peers <= 0:
        return 1
    root = int(np.sqrt(num_peers))
    return max(2, min(root, 512))


def _fold_ufunc(column: SynopsisColumn) -> np.ufunc:
    """The family's union fold over packed rows (fastpath kernels)."""
    if isinstance(column, MipsColumn):
        return np.minimum
    if isinstance(column, LogLogColumn):
        return np.maximum
    return np.bitwise_or  # Bloom and hash-sketch bitsets


def _popcounts(matrix: np.ndarray) -> np.ndarray:
    """Per-row popcount of a packed uint64 matrix."""
    if hasattr(np, "bitwise_count"):
        return np.bitwise_count(matrix).sum(axis=1, dtype=np.int64)
    return np.unpackbits(
        matrix.view(np.uint8), axis=1
    ).sum(axis=1, dtype=np.int64)


def peer_profiles(
    columns: Sequence[TermColumns], table: PeerIdTable
) -> tuple[np.ndarray, SynopsisColumn]:
    """Per-peer profile matrix: row ``i`` = union of peer ``i``'s synopses.

    Requires every term column to be pure and parameter-identical (one
    directory-wide :class:`~repro.synopses.factory.SynopsisSpec`), which
    is how every engine and testbed publishes.  Raises ``ValueError``
    otherwise — heterogeneous synopses cannot be folded into one matrix.
    """
    template: SynopsisColumn | None = None
    for term_columns in columns:
        column = term_columns.synopsis_column
        if column is None or not term_columns.is_pure:
            raise ValueError(
                f"term {term_columns.term!r} has no pure packed synopsis "
                "column; super-peer clustering needs one synopsis family "
                "directory-wide"
            )
        if template is None:
            template = column
        elif type(column) is not type(template) or column.params != template.params:
            raise ValueError(
                "mixed synopsis families/parameters across terms; "
                "super-peer clustering needs one spec directory-wide"
            )
    if template is None:
        raise ValueError("no stored terms to cluster on")
    fold = _fold_ufunc(template)
    profiles = template.neutral_matrix(len(table))
    for term_columns in columns:
        mask = term_columns.synopsis_flags()
        column = term_columns.synopsis_column
        assert column is not None
        fold.at(
            profiles,
            term_columns.interned_ids()[mask],
            column.rows(len(term_columns))[mask],
        )
    return profiles, template


def peer_capacities(
    columns: Sequence[TermColumns], table: PeerIdTable
) -> np.ndarray:
    """Total posted ``cdf`` per interned peer id — the election key."""
    capacity = np.zeros(len(table), dtype=np.int64)
    for term_columns in columns:
        np.add.at(
            capacity, term_columns.interned_ids(), term_columns.cdf_values()
        )
    return capacity


def _similarities(
    profiles: np.ndarray, centroids: np.ndarray, column: SynopsisColumn
) -> np.ndarray:
    """(N, k) resemblance of every profile to every centroid."""
    num_centroids = len(centroids)
    sims = np.empty((len(profiles), num_centroids), dtype=np.float64)
    if isinstance(column, (MipsColumn, LogLogColumn)):
        for j in range(num_centroids):
            sims[:, j] = (profiles == centroids[j]).mean(axis=1)
        return sims
    for j in range(num_centroids):
        inter = _popcounts(profiles & centroids[j])
        union = _popcounts(profiles | centroids[j])
        sims[:, j] = inter / np.maximum(union, 1)
    return sims


def cluster_peers(
    profiles: np.ndarray,
    num_clusters: int,
    column: SynopsisColumn,
    *,
    seed: int = 0,
    refine_rounds: int = 2,
) -> np.ndarray:
    """Assign every profile row to a cluster index (deterministic).

    Seeded medoid initialization (a sorted sample of rows), similarity
    assignment with ties to the lowest cluster index (``argmax`` returns
    the first maximum), then ``refine_rounds`` of union-fold centroids.
    """
    if num_clusters <= 0:
        raise ValueError(f"num_clusters must be positive, got {num_clusters}")
    num_rows = len(profiles)
    if num_rows == 0:
        return np.zeros(0, dtype=np.int64)
    k = min(num_clusters, num_rows)
    rng = random.Random(derive_seed(seed, "superpeer-medoids"))
    medoids = sorted(rng.sample(range(num_rows), k))
    centroids = profiles[medoids].copy()
    fold = _fold_ufunc(column)
    assignment = np.argmax(_similarities(profiles, centroids, column), axis=1)
    for _ in range(max(0, refine_rounds)):
        for j in range(k):
            members = profiles[assignment == j]
            if len(members):
                centroids[j] = fold.reduce(members, axis=0)
        refined = np.argmax(_similarities(profiles, centroids, column), axis=1)
        if np.array_equal(refined, assignment):
            break
        assignment = refined
    return assignment.astype(np.int64)


def elect_super_peer(
    members: Sequence[str], capacity_of: Callable[[str], int]
) -> str:
    """Highest capacity wins; ties to the lexicographically smallest id."""
    if not members:
        raise ValueError("cannot elect a super-peer from an empty cluster")
    return min(members, key=lambda peer_id: (-capacity_of(peer_id), peer_id))


def group_fold_synopses(
    column: SynopsisColumn,
    rows: np.ndarray,
    groups: np.ndarray,
    num_groups: int,
) -> np.ndarray:
    """Union-fold packed synopsis rows per group.

    ``rows`` is an ``(M, W)`` packed matrix, ``groups`` the ``(M,)``
    group index of each row; group ``g`` of the result holds the
    family's union of its rows (neutral where a group has none) — the
    merged cluster synopsis, computed without materializing a single
    per-peer object.
    """
    merged = column.neutral_matrix(num_groups)
    _fold_ufunc(column).at(merged, groups, rows)
    return merged


def materialize_rows(
    column: SynopsisColumn, matrix: np.ndarray
) -> list[SetSynopsis]:
    """Packed rows back to synopsis objects (for cluster-list Posts)."""
    scratch = column.fresh(max(1, len(matrix)))
    for row, values in enumerate(matrix):
        scratch.set_packed_row(row, values)
    return [scratch.materialize(row) for row in range(len(matrix))]
