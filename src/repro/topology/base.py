"""Pluggable routing topologies: who assembles a query's candidate peers.

Historically every query path — the in-process engine, the simulated
network executor, the serving frontend — reached straight into the flat
global directory: one full PeerList fetch per query term.  That
hard-codes the paper's single-level architecture.  This package lifts
candidate-peer assembly, directory lookup, and plan scoping behind one
object, :class:`RoutingTopology`, with two implementations:

- :class:`~repro.topology.flat.FlatTopology` — today's behavior,
  bit-identical plans and costs;
- :class:`~repro.topology.superpeer.SuperPeerTopology` — a two-level
  super-peer tier (Ismail et al.): peers are clustered by synopsis
  similarity, each cluster elects a super-peer holding merged cluster
  synopses, and IQN runs twice — first across clusters, then across the
  winning clusters' members under a split budget.

The contract is deliberately small.  A topology is *bound* to a host
(anything exposing a directory, a synopsis spec, and a peer count), and
then answers three questions per query:

1. :meth:`RoutingTopology.assemble` — which PeerLists does the initiator
   see, and what did fetching them cost?
2. :meth:`RoutingTopology.context_for` — wrap those lists into the
   :class:`~repro.routing.base.RoutingContext` the selectors consume.
3. :meth:`RoutingTopology.plan` — run the selector over the (possibly
   scoped) context and report the plan with topology diagnostics.

Churn integration happens through :meth:`RoutingTopology.handle_peer_down`
/ :meth:`~RoutingTopology.handle_peer_up`, which hierarchical topologies
use for deterministic super-peer re-election and cluster-synopsis
rebuilds (surfaced as ``reelect`` events on the
:class:`~repro.churn.service.ChurnService` feed).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Protocol

from ..datasets.queries import Query
from ..minerva.directory import Directory
from ..minerva.posts import PeerList
from ..routing.base import LocalView, PeerSelector, RoutingContext
from ..synopses.factory import SynopsisSpec

if TYPE_CHECKING:  # annotation only — fastpath imports stay off this path
    from ..core.fastpath import RoutingStats

__all__ = [
    "TopologyHost",
    "ScopedLists",
    "TopologyPlan",
    "ReElection",
    "RoutingTopology",
]


class TopologyHost(Protocol):
    """What a topology needs from its surroundings to assemble queries.

    :class:`~repro.minerva.engine.MinervaEngine` satisfies this, and so
    does the lightweight directory-only host the hierarchy experiments
    use at 100k peers (:class:`repro.datasets.scale.ScaledTestbed`).
    """

    directory: Directory
    spec: SynopsisSpec

    @property
    def num_peers(self) -> int: ...


@dataclass
class ScopedLists:
    """The candidate PeerLists one query sees, plus scoping diagnostics.

    ``scope`` is ``None`` for an unrestricted (flat) assembly; for a
    hierarchical assembly it holds exactly the peer ids routing may
    select from (the winning clusters' members).
    """

    peer_lists: dict[str, PeerList]
    scope: frozenset[str] | None = None
    clusters_ranked: tuple[str, ...] = ()
    #: Messages answered by super-peers for this assembly: one cluster
    #: directory fetch plus one member fetch per winning cluster.
    super_fetches: int = 0


@dataclass(frozen=True)
class TopologyPlan:
    """A routed plan plus what the topology did to produce it."""

    selected: tuple[str, ...]
    routing_stats: "RoutingStats | None" = field(default=None, repr=False)
    clusters_ranked: tuple[str, ...] = ()
    #: Candidate peers the selector could see (None = whole directory).
    scope_size: int | None = None
    super_fetches: int = 0


@dataclass(frozen=True)
class ReElection:
    """Outcome of a deterministic super-peer re-election after churn."""

    cluster: str
    old_super: str
    new_super: str
    #: Remaining live members of the cluster, sorted.
    members: tuple[str, ...]
    #: Terms whose merged cluster synopses were rebuilt, sorted.
    terms: tuple[str, ...]


class RoutingTopology(ABC):
    """Owns candidate-peer assembly, directory lookup, and plan scoping."""

    #: True when queries route through a super-peer tier; the simnet
    #: executor and the serving frontend branch on this to use the
    #: two-phase fetch path.
    hierarchical: bool = False

    def __init__(self) -> None:
        self._host: TopologyHost | None = None

    # -- binding ---------------------------------------------------------

    def bind(self, host: TopologyHost) -> None:
        """Attach to a host; must happen before any query assembly."""
        self._host = host
        self._on_bind()

    def _on_bind(self) -> None:
        """Hook for subclasses needing setup at bind time."""

    @property
    def host(self) -> TopologyHost:
        if self._host is None:
            raise RuntimeError(
                f"{type(self).__name__} is not bound to a host; call bind() first"
            )
        return self._host

    @property
    def bound(self) -> bool:
        return self._host is not None

    # -- query pipeline --------------------------------------------------

    @abstractmethod
    def assemble(
        self,
        query: Query,
        *,
        requester: str | None = None,
        initiator: LocalView | None = None,
        conjunctive: bool = False,
        max_peers: int | None = None,
        peer_list_limit: int | None = None,
        peer_list_batch_size: int = 8,
    ) -> ScopedLists:
        """Fetch the PeerLists this query routes over, charging cost.

        ``initiator`` seeds hierarchical cluster ranking (the reference
        synopsis starts from the initiator's local result); flat
        assembly ignores it.  ``max_peers`` lets hierarchical topologies
        derive their cluster budget from the query's peer budget.
        """

    def context_for(
        self,
        query: Query,
        scoped: ScopedLists,
        *,
        initiator: LocalView | None = None,
        conjunctive: bool = False,
    ) -> RoutingContext:
        """Wrap assembled lists into the context selectors consume."""
        return RoutingContext(
            query=query,
            peer_lists=scoped.peer_lists,
            num_peers=self.host.num_peers,
            spec=self.host.spec,
            initiator=initiator,
            conjunctive=conjunctive,
        )

    def plan(
        self,
        context: RoutingContext,
        scoped: ScopedLists,
        selector: PeerSelector,
        max_peers: int,
    ) -> TopologyPlan:
        """Run the selector over the scoped context."""
        ranked = selector.rank(context, max_peers)
        return TopologyPlan(
            selected=tuple(ranked),
            routing_stats=getattr(selector, "last_stats", None),
            clusters_ranked=scoped.clusters_ranked,
            scope_size=None if scoped.scope is None else len(scoped.scope),
            super_fetches=scoped.super_fetches,
        )

    def route(
        self,
        query: Query,
        selector: PeerSelector,
        max_peers: int,
        *,
        requester: str | None = None,
        initiator: LocalView | None = None,
        conjunctive: bool = False,
        peer_list_limit: int | None = None,
    ) -> TopologyPlan:
        """Assemble, contextualize, and plan in one call."""
        scoped = self.assemble(
            query,
            requester=requester,
            initiator=initiator,
            conjunctive=conjunctive,
            max_peers=max_peers,
            peer_list_limit=peer_list_limit,
        )
        context = self.context_for(
            query, scoped, initiator=initiator, conjunctive=conjunctive
        )
        return self.plan(context, scoped, selector, max_peers)

    @abstractmethod
    def cache_signature(self) -> str:
        """Every knob that can change assembled lists or scoped plans."""

    # -- churn hooks -----------------------------------------------------

    def handle_peer_down(self, peer_id: str) -> ReElection | None:
        """A peer crashed or left; hierarchical topologies re-elect."""
        del peer_id
        return None

    def handle_peer_up(self, peer_id: str) -> None:
        """A crashed peer recovered and re-published its posts."""
        del peer_id
