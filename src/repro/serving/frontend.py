"""The serving front end: cached routing + streamed top-k over simnet.

:class:`ServingFrontend` turns the one-shot query pipeline into a
query-*serving* layer.  It wraps a :class:`~repro.simnet.executor.
SimNetExecutor` (or a :class:`~repro.churn.service.ChurnService`, whose
directory events it subscribes to) and serves each query in three
steps:

1. **plan** — look the normalized query up in the
   :class:`~repro.serving.cache.RoutingPlanCache`.  On a miss, pay
   exactly the one-shot path's Phase 1 + 2 (PeerList fetches over
   Chord, selector ranking — reference synopses memoized through the
   :class:`~repro.serving.cache.ReferenceSynopsisCache`) and cache the
   ranked plan with per-peer score bounds.  On a hit, skip both phases:
   no directory traffic, no ranking delay.
2. **stream** — pull score-sorted result batches from the planned peers
   in synchronized rounds, closing each stream as soon as the
   threshold-style test (:mod:`repro.serving.streaming`) proves it
   cannot change the top-k.  A planned peer that never answers is
   replaced by the plan's next spare, as in the one-shot path.
3. **merge** — the incremental merge *is* the final merge; its top-k is
   bit-identical to ``merge_results`` over full forwarding.

Every message is charged to the transport and to a per-query
:class:`~repro.net.cost.CostSnapshot` with the batch traffic under the
``result_batch`` kind, so experiments can compare streamed bytes
directly against the one-shot path's ``result_return`` bytes.

Peer content is static in this simulation (churn toggles reachability
and directory state, never a live peer's index), so the per-peer local
top-k computed for a term set is memoized server-side: a peer pays its
``peer_service_ms`` compute once per distinct request shape and serves
later batches from the memo.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Generator, Sequence

from ..churn.service import ChurnService, DirectoryEvent
from ..datasets.queries import Query
from ..ir.topk import ScoredDocument
from ..minerva.engine import (
    BATCH_HEADER_BITS,
    QUERY_HEADER_BITS,
    QUERY_TERM_BITS,
    RESULT_ENTRY_BITS,
)
from ..net.cost import CostModel, CostSnapshot, MessageKinds
from ..parallel.seeding import derive_seed
from ..routing.base import PeerSelector
from ..simnet.clock import SimFuture, gather, spawn
from ..simnet.executor import SimNetExecutor
from ..simnet.rpc import RpcHandler, RpcResult
from .cache import (
    CachedPlan,
    CacheStats,
    CachingSpec,
    PlanKey,
    ReferenceSynopsisCache,
    RoutingPlanCache,
    plan_key,
)
from .streaming import StreamMerger, StreamState, synopsis_upper_bound

__all__ = ["BATCH_HEADER_BITS", "ServedQuery", "ServingFrontend"]

#: Batch-request payload: (terms, offset, limit, peer_k, conjunctive).
_BatchRequest = tuple[tuple[str, ...], int, int, int, bool]


@dataclass(frozen=True)
class ServedQuery:
    """One served query: the answer plus how the caches and streams did.

    ``topk`` is the merged top-k (bit-identical to the one-shot path's
    ``merged[:k]`` on a fault-free run); ``selected`` are the plan's
    target peers at serve time and ``substituted`` the spares promoted
    for targets that never answered, so ``(*selected, *substituted)``
    mirrors the one-shot outcome's ``selected``.  ``peers_skipped``
    counts targets whose stream was closed before a single batch
    (their bound never beat the threshold) — pure bytes saved.
    """

    query: Query
    initiator_id: str
    topk: tuple[ScoredDocument, ...]
    selected: tuple[str, ...]
    substituted: tuple[str, ...]
    plan_hit: bool
    started_ms: float
    finished_ms: float
    batch_rounds: int
    entries_streamed: int
    peers_skipped: int
    timed_out_peers: tuple[str, ...]
    failed_terms: tuple[str, ...]
    cost: CostSnapshot

    @property
    def latency_ms(self) -> float:
        """Virtual wall-clock from submission to merged top-k."""
        return self.finished_ms - self.started_ms

    @property
    def queried(self) -> tuple[str, ...]:
        """Peers actually asked for results, in contact order."""
        return (*self.selected, *self.substituted)

    @property
    def degraded(self) -> bool:
        """True when a peer or directory lookup failed to answer."""
        return bool(self.timed_out_peers or self.failed_terms)


class ServingFrontend:
    """Serves a query stream with hot routing caches and streamed top-k.

    Construct over a :class:`SimNetExecutor` (static membership) or a
    :class:`ChurnService` (live membership — the front end subscribes
    to its :class:`DirectoryEvent` feed and invalidates accordingly).
    Routing knobs are fixed per front end because they are part of the
    plan-cache key; build one front end per serving configuration.

    Determinism: serving shares the executor's virtual clock and seeded
    transport, so the same ``(engine setup, host, workload, seed)``
    serves bit-identical results at any process parallelism.
    """

    def __init__(
        self,
        host: SimNetExecutor | ChurnService,
        selector: PeerSelector,
        *,
        max_peers: int = 10,
        k: int = 50,
        peer_k: int | None = None,
        conjunctive: bool = False,
        batch_size: int | None = None,
        fallback_spares: int = 0,
        successor_fallback: bool = False,
        plan_cache_size: int | None = None,
        synopsis_cache_size: int | None = None,
    ) -> None:
        if isinstance(host, ChurnService):
            self.executor = host.executor
            self.service: ChurnService | None = host
            host.subscribe(self._on_directory_event)
        else:
            self.executor = host
            self.service = None
        self.selector = selector
        self.max_peers = max_peers
        self.k = k
        self.peer_k = k if peer_k is None else peer_k
        self.conjunctive = conjunctive
        self.batch_size = k if batch_size is None else batch_size
        self.fallback_spares = fallback_spares
        self.successor_fallback = successor_fallback
        if self.max_peers <= 0:
            raise ValueError(f"max_peers must be positive, got {max_peers}")
        if self.k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        if self.peer_k <= 0:
            raise ValueError(f"peer_k must be positive, got {self.peer_k}")
        if self.batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        if self.fallback_spares < 0:
            raise ValueError(
                f"fallback_spares must be >= 0, got {fallback_spares}"
            )
        engine = self.executor.engine
        self.plan_cache = RoutingPlanCache(max_plans=plan_cache_size)
        self.synopsis_cache = ReferenceSynopsisCache(
            engine.spec, max_entries=synopsis_cache_size
        )
        self._caching_spec = CachingSpec(self.synopsis_cache)
        #: (peer_id, sorted terms, peer_k, conjunctive) -> full local top-k.
        self._answers: dict[
            tuple[str, tuple[str, ...], int, bool], tuple[ScoredDocument, ...]
        ] = {}
        self._jobs: list[SimFuture] = []
        for peer_id in engine.peers:
            self.executor.rpc.serve(
                peer_id, MessageKinds.RESULT_BATCH, self._serve_batch(peer_id)
            )

    # -- server side -------------------------------------------------------

    def _peer_answer(
        self, peer_id: str, terms: tuple[str, ...], peer_k: int, conjunctive: bool
    ) -> tuple[ScoredDocument, ...] | None:
        """A peer's full local top-``peer_k``, memoized (content is static)."""
        key = (peer_id, tuple(sorted(terms)), peer_k, conjunctive)
        cached = self._answers.get(key)
        if cached is not None:
            return cached
        peer = self.executor.engine.peers.get(peer_id)
        if peer is None:
            return None
        results = tuple(
            peer.answer_query(terms, k=peer_k, conjunctive=conjunctive)
        )
        self._answers[key] = results
        return results

    def _serve_batch(self, peer_id: str) -> RpcHandler:
        """Handler: one score-sorted slice of this peer's local top-k.

        The first batch pays the peer's full service time (the local
        top-k is computed once and memoized); later slices of the same
        answer are served from the memo for free — transport latency
        still applies.
        """

        def handler(
            payload: _BatchRequest,
        ) -> tuple[tuple[ScoredDocument, ...], int, float] | None:
            terms, offset, limit, peer_k, conjunctive = payload
            results = self._peer_answer(peer_id, terms, peer_k, conjunctive)
            if results is None:
                return None  # departed since construction: no reply
            batch = results[offset : offset + limit]
            service_ms = self.executor.peer_service_ms if offset == 0 else 0.0
            return batch, RESULT_ENTRY_BITS * len(batch), service_ms

        return handler

    # -- churn awareness ---------------------------------------------------

    def _on_directory_event(self, event: DirectoryEvent) -> None:
        """Apply one directory change to both caches (see cache module)."""
        if event.kind in ("crash", "leave", "evict"):
            self.plan_cache.drop_peer(event.peer_id)
        if event.kind == "reelect":
            # A super-peer re-election rebuilt the cluster's merged
            # synopses: every scoped plan touching the cluster's members
            # could have ranked differently, so those re-route cold —
            # per-cluster invalidation, not a full flush.
            self.plan_cache.invalidate_peers(event.members)
            self.synopsis_cache.bump_epoch()
        if event.kind in ("recover", "repost", "expire", "evict"):
            # Directory content observably changed (fresh reposts, TTL
            # expiry, or an eviction's re-replication pass): plans over
            # the affected terms may rank wrongly now, and the synopsis
            # epoch moves so cached reference synopses age out with them.
            self.plan_cache.invalidate_terms(event.terms)
            self.synopsis_cache.bump_epoch()

    # -- client side -------------------------------------------------------

    def serve(
        self,
        query: Query,
        *,
        at_ms: float | None = None,
        initiator_id: str | None = None,
    ) -> SimFuture:
        """Schedule one query at virtual time ``at_ms`` (default: now).

        Returns a future resolving to a :class:`ServedQuery` once the
        clock has been driven past its completion (:meth:`run`).
        Initiator defaulting matches :meth:`SimNetExecutor.submit`.
        """
        self.executor.engine._ensure_published(query)
        if initiator_id is None:
            peer_ids = sorted(self.executor.engine.peers)
            initiator_id = peer_ids[query.query_id % len(peer_ids)]
        elif initiator_id not in self.executor.engine.peers:
            raise KeyError(f"unknown peer {initiator_id!r}")
        result = SimFuture()

        def start() -> None:
            job = spawn(self._serve_job(query, initiator_id))
            job.add_done_callback(lambda done: result.resolve(done.value))

        clock = self.executor.clock
        clock.schedule_at(clock.now if at_ms is None else at_ms, start)
        self._jobs.append(result)
        return result

    def serve_log(
        self,
        log: Sequence[Query],
        *,
        interarrival_ms: float = 100.0,
        arrivals: str = "poisson",
        seed: int | None = None,
        start_ms: float = 0.0,
        live_initiators: bool | None = None,
    ) -> list[ServedQuery]:
        """Serve a whole query log under an arrival process and run it.

        Mirrors :meth:`SimNetExecutor.run_workload`: arrival gaps come
        from a seeded stream, queries genuinely overlap in virtual
        time.  With ``live_initiators`` (default: on when hosted by a
        :class:`ChurnService`) each query's initiator is chosen among
        the peers alive at its arrival instant; otherwise the static
        default initiator is used, which is what makes repeated log
        entries share a plan-cache key.
        """
        if interarrival_ms <= 0:
            raise ValueError(
                f"interarrival_ms must be positive, got {interarrival_ms}"
            )
        if arrivals not in ("poisson", "uniform"):
            raise ValueError(
                f"arrivals must be poisson or uniform, got {arrivals!r}"
            )
        if live_initiators is None:
            live_initiators = self.service is not None
        rng = random.Random(
            derive_seed(
                self.executor.seed if seed is None else seed, "serve-log"
            )
        )
        futures: list[SimFuture] = []
        at_ms = start_ms
        clock = self.executor.clock
        for query in log:
            if live_initiators and self.service is not None:
                service = self.service

                def submit(q: Query = query) -> None:
                    futures.append(
                        self.serve(q, initiator_id=service._pick_initiator(q))
                    )

                clock.schedule_at(at_ms, submit)
            else:
                futures.append(self.serve(query, at_ms=at_ms))
            gap = (
                rng.expovariate(1.0 / interarrival_ms)
                if arrivals == "poisson"
                else interarrival_ms
            )
            at_ms += gap
        self.run()
        return [future.value for future in futures]

    def run(self, *, until_ms: float | None = None) -> list[ServedQuery]:
        """Drive the clock until idle; return all completed queries."""
        self.executor.clock.run(until_ms=until_ms)
        unfinished = sum(1 for job in self._jobs if not job.done)
        if unfinished and until_ms is None:
            raise RuntimeError(
                f"{unfinished} served queries never completed; "
                "simulation stalled"
            )
        return [job.value for job in self._jobs if job.done]

    # -- the serving coroutine ---------------------------------------------

    def _plan_cold(
        self, query: Query, initiator_id: str, key: PlanKey, cost: CostModel
    ) -> Generator[
        SimFuture, Any, tuple[CachedPlan, tuple[ScoredDocument, ...], tuple[str, ...]]
    ]:
        """Phases 1 + 2 of the one-shot path, producing a cacheable plan."""
        executor = self.executor
        if executor.engine.topology.hierarchical:
            scoped = yield from executor._fetch_scoped_lists(
                query,
                initiator_id,
                cost,
                peer_k=self.peer_k,
                conjunctive=self.conjunctive,
                max_peers=self.max_peers,
                successor_fallback=self.successor_fallback,
            )
            peer_lists, scoped_failed = scoped[0], scoped[1]
            failed_terms = list(scoped_failed)
        else:
            fetch = yield from executor._fetch_peer_lists(
                query, initiator_id, cost, self.successor_fallback
            )
            peer_lists, failed_terms, _attempts, _fallbacks = fetch
        context, local = executor.make_routing_context(
            query,
            initiator_id,
            peer_lists,
            peer_k=self.peer_k,
            conjunctive=self.conjunctive,
            spec=self._caching_spec,
        )
        ranked = tuple(
            self.selector.rank(context, self.max_peers + self.fallback_spares)
        )
        bounds: dict[str, float] = {}
        for peer_id in ranked:
            if failed_terms:
                # Degraded directory view: bounds could be under-
                # estimates, so disable early termination outright.
                bounds[peer_id] = float("inf")
                continue
            posts = (peer_lists[term].get(peer_id) for term in query.terms)
            bounds[peer_id] = synopsis_upper_bound(
                post.max_score for post in posts if post is not None
            )
        plan = CachedPlan(
            ranked=ranked,
            bounds=bounds,
            terms=key.terms,
            epoch=self.synopsis_cache.epoch,
        )
        if not failed_terms:
            self.plan_cache.store(key, plan)
        if executor.routing_ms:
            yield executor._sleep(executor.routing_ms)
        return plan, local, tuple(failed_terms)

    def _serve_job(
        self, query: Query, initiator_id: str
    ) -> Generator[SimFuture, Any, ServedQuery]:
        executor = self.executor
        started = executor.clock.now
        cost = CostModel()
        key = plan_key(
            query,
            self.selector,
            initiator_id=initiator_id,
            max_peers=self.max_peers,
            fallback_spares=self.fallback_spares,
            conjunctive=self.conjunctive,
        )
        cached = self.plan_cache.lookup(key)
        failed_terms: tuple[str, ...] = ()
        if cached is None:
            plan, local, failed_terms = yield from self._plan_cold(
                query, initiator_id, key, cost
            )
        else:
            plan = cached
            hit_local = self._peer_answer(
                initiator_id, query.terms, self.peer_k, self.conjunctive
            )
            local = hit_local if hit_local is not None else ()

        # Phase 3, streamed: synchronized batch rounds over the planned
        # peers, each stream closed as soon as the threshold test proves
        # it irrelevant; failed streams fall back to the plan's spares.
        selected = plan.ranked[: self.max_peers]
        spares = list(plan.ranked[self.max_peers :])
        merger = StreamMerger(local, k=self.k)
        streams = {
            peer_id: StreamState(
                peer_id=peer_id, upper=plan.bounds.get(peer_id, float("inf"))
            )
            for peer_id in selected
        }
        order = list(selected)
        promoted: list[str] = []
        timed_out: list[str] = []
        rounds = 0
        entries_streamed = 0
        request_bits = (
            QUERY_HEADER_BITS
            + QUERY_TERM_BITS * len(query.terms)
            + BATCH_HEADER_BITS
        )

        def fetch_batch(stream: StreamState) -> SimFuture:
            return executor.rpc.call(
                initiator_id,
                stream.peer_id,
                MessageKinds.RESULT_BATCH,
                payload=(
                    query.terms,
                    stream.offset,
                    self.batch_size,
                    self.peer_k,
                    self.conjunctive,
                ),
                request_bits=request_bits,
            )

        while True:
            active = [
                stream
                for peer_id in order
                if (stream := streams[peer_id]) and merger.still_open(stream)
            ]
            if not active:
                break
            rounds += 1
            replies: list[RpcResult] = yield gather(
                [fetch_batch(stream) for stream in active]
            )
            for stream, reply in zip(active, replies):
                cost.record(
                    MessageKinds.QUERY_FORWARD,
                    bits=request_bits * reply.attempts,
                    count=reply.attempts,
                )
                if reply.ok:
                    batch: tuple[ScoredDocument, ...] = reply.value
                    cost.record(
                        MessageKinds.RESULT_BATCH,
                        bits=RESULT_ENTRY_BITS * len(batch),
                    )
                    entries_streamed += len(batch)
                    merger.absorb(batch)
                    stream.note_batch(batch, self.batch_size)
                    continue
                stream.exhausted = True
                timed_out.append(stream.peer_id)
                if spares:
                    candidate = spares.pop(0)
                    streams[candidate] = StreamState(
                        peer_id=candidate,
                        upper=plan.bounds.get(candidate, float("inf")),
                    )
                    order.append(candidate)
                    promoted.append(candidate)

        peers_skipped = sum(
            1 for peer_id in selected if not streams[peer_id].contributed
        )
        substituted = tuple(
            peer_id for peer_id in promoted if streams[peer_id].contributed
        )
        return ServedQuery(
            query=query,
            initiator_id=initiator_id,
            topk=merger.topk(),
            selected=selected,
            substituted=substituted,
            plan_hit=cached is not None,
            started_ms=started,
            finished_ms=executor.clock.now,
            batch_rounds=rounds,
            entries_streamed=entries_streamed,
            peers_skipped=peers_skipped,
            timed_out_peers=tuple(timed_out),
            failed_terms=failed_terms,
            cost=cost.snapshot(),
        )

    # -- observability -----------------------------------------------------

    def plan_stats(self) -> CacheStats:
        """Routing-plan cache counters."""
        return self.plan_cache.stats()

    def synopsis_stats(self) -> CacheStats:
        """Reference-synopsis cache counters."""
        return self.synopsis_cache.stats()

    def __repr__(self) -> str:
        return (
            f"ServingFrontend(peers={len(self.executor.engine.peers)}, "
            f"plans={self.plan_stats()}, synopses={self.synopsis_stats()})"
        )
