"""Query serving: hot routing caches and streamed early-termination top-k.

The one-shot pipeline (:mod:`repro.simnet`) answers each query from
scratch; this package answers a *stream* of queries the way a deployed
MINERVA front end would — exploiting the heavy repetition of real query
logs (:func:`repro.datasets.queries.make_query_log`) with a churn-aware
routing-plan cache, a reference-synopsis cache for IQN's novelty
rescoring, and threshold-style early termination over score-sorted
result streams.  On a cold cache and a fault-free network the served
top-k is bit-identical to the one-shot path; everything else is bytes
and latency saved.
"""

from .cache import (
    CachedPlan,
    CacheStats,
    CachingSpec,
    PlanKey,
    ReferenceSynopsisCache,
    RoutingPlanCache,
    plan_key,
    selector_signature,
)
from .frontend import BATCH_HEADER_BITS, ServedQuery, ServingFrontend
from .streaming import StreamMerger, StreamState, synopsis_upper_bound

__all__ = [
    "BATCH_HEADER_BITS",
    "CachedPlan",
    "CacheStats",
    "CachingSpec",
    "PlanKey",
    "ReferenceSynopsisCache",
    "RoutingPlanCache",
    "ServedQuery",
    "ServingFrontend",
    "StreamMerger",
    "StreamState",
    "plan_key",
    "selector_signature",
    "synopsis_upper_bound",
]
