"""Streamed top-k merging with threshold-style early termination.

The one-shot executor ships every selected peer's full local top-k in a
single ``result_return`` — simple, but most of those entries never make
the merged top-k.  The serving path instead pulls *score-sorted batches*
and stops a peer's stream as soon as it provably cannot change the
answer, in the spirit of the threshold algorithm (Fagin et al.) the
paper builds its own candidate pruning on (Section 5's "TA-style
evaluations over the peer lists" — here applied to result shipping
rather than candidate selection).

The stopping rule is conservative on two fronts:

- a stream is closed only when the k-th best merged score *strictly*
  exceeds the stream's upper bound — on a tie the bound could still be
  attained by a not-yet-seen document whose doc-id wins the tiebreak,
  so ties keep the stream open;
- synopsis-predicted bounds (sum of per-term Post ``max_score`` over the
  query terms) are padded by a tiny relative margin
  (:func:`synopsis_upper_bound`), because the peer's own scorer
  accumulates per-term scores in set-iteration order while the bound is
  an :func:`math.fsum` over the posted maxima — IEEE addition is not
  associative, and the bound must dominate every achievable sum, not
  just the infinitely precise one.

Bounds only ever decide *how much gets fetched*; the merged values
themselves come from the peers, so a slack bound costs bytes, never
correctness.  The final :meth:`StreamMerger.topk` reproduces
:func:`repro.ir.merge.merge_results` exactly (max-dedup by doc-id, sort
by score then doc-id descending), which is what makes the streamed
answer bit-identical to the full-forwarding one.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence

from ..ir.topk import ScoredDocument

__all__ = ["synopsis_upper_bound", "StreamState", "StreamMerger"]

#: Relative + absolute padding applied to summed score bounds, covering
#: accumulation-order differences between the bound's fsum and the
#: peer-side scorer's running sum.  Orders of magnitude above any
#: double-rounding error for realistic scores, orders below any real
#: score gap — it only matters when a bound ties the k-th score to the
#: last ulp, where correctness demands staying open anyway.
_BOUND_MARGIN = 1e-9


def synopsis_upper_bound(max_scores: Iterable[float]) -> float:
    """Upper bound on one peer's best achievable document score.

    A document's score is the sum of its per-term scores over the query
    terms it matches, so the peer-side maximum is bounded by the sum of
    the per-term maxima its directory Posts advertise.  The bound is
    padded (see module docstring) so floating-point accumulation order
    can never make a real score exceed it.
    """
    total = math.fsum(max_scores)
    return total + abs(total) * _BOUND_MARGIN + _BOUND_MARGIN


@dataclass
class StreamState:
    """Progress of one peer's score-sorted result stream.

    ``upper`` bounds the score of any entry the stream has not shipped
    yet: initially the plan's synopsis-predicted bound, then the score
    of the last entry of the latest batch (streams are score-sorted, so
    nothing later can exceed it).
    """

    peer_id: str
    upper: float
    offset: int = 0
    exhausted: bool = False

    def note_batch(self, batch: Sequence[ScoredDocument], limit: int) -> None:
        """Advance past ``batch`` (requested with size ``limit``)."""
        self.offset += len(batch)
        if len(batch) < limit:
            self.exhausted = True
        if batch:
            self.upper = min(self.upper, batch[-1].score)

    @property
    def contributed(self) -> bool:
        """True once the peer has shipped at least one entry."""
        return self.offset > 0


class StreamMerger:
    """Incremental max-dedup merge with a provable stopping rule.

    Seeded with the initiator's local results (which cost no network
    traffic), then fed batches as they arrive.  :meth:`still_open`
    implements the early-termination test; :meth:`topk` produces the
    final merged ranking, identical to what
    :func:`~repro.ir.merge.merge_results` computes over the full
    per-peer result lists.
    """

    def __init__(self, local: Iterable[ScoredDocument], k: int) -> None:
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        self.k = k
        self._best: dict[int, float] = {}
        self.absorb(local)

    def __len__(self) -> int:
        return len(self._best)

    def absorb(self, entries: Iterable[ScoredDocument]) -> None:
        """Merge a batch: keep each doc-id's maximum score."""
        best = self._best
        for entry in entries:
            current = best.get(entry.doc_id)
            if current is None or entry.score > current:
                best[entry.doc_id] = entry.score

    def threshold(self) -> float | None:
        """The k-th best merged score, or None with fewer than k docs.

        With fewer than k distinct documents merged, *any* stream could
        still contribute a top-k entry, so there is no threshold yet.
        """
        if len(self._best) < self.k:
            return None
        return sorted(self._best.values(), reverse=True)[self.k - 1]

    def still_open(self, stream: StreamState) -> bool:
        """Must ``stream`` keep shipping batches?

        Closed only when the current k-th merged score strictly exceeds
        everything the stream could still send.  A tie keeps the stream
        open: an unseen document at exactly the bound could displace a
        current member on the doc-id tiebreak.
        """
        if stream.exhausted:
            return False
        threshold = self.threshold()
        return threshold is None or not threshold > stream.upper

    def topk(self) -> tuple[ScoredDocument, ...]:
        """The merged top-k, exactly as ``merge_results`` would rank it."""
        ranked = sorted(
            (
                ScoredDocument(score=score, doc_id=doc_id)
                for doc_id, score in self._best.items()
            ),
            reverse=True,
        )
        return tuple(ranked[: self.k])

    def __repr__(self) -> str:
        return f"StreamMerger(k={self.k}, docs={len(self._best)})"
