"""Hot routing state for the serving front end.

A live MINERVA deployment answers a *stream* of queries, and real query
logs are heavily skewed: the same few queries repeat constantly.  The
per-query work that :class:`~repro.simnet.executor.SimNetExecutor` pays
on every submission — PeerList fetches over Chord, synopsis-based
ranking, reference-synopsis construction — is identical across
repetitions as long as the directory has not observably changed.  Two
caches capture that reuse:

- :class:`RoutingPlanCache` maps a normalized query key (sorted terms,
  selector/aggregation signature, initiator, routing knobs) to the
  ranked peer plan *and* per-peer score upper bounds, so a repeated
  query skips Phase 1 (directory traffic) and Phase 2 (ranking) cold.
- :class:`ReferenceSynopsisCache` memoizes the synopses IQN's novelty
  rescoring builds from document-id sets (the initiator's reference
  synopsis and every absorbed update), keyed by content and directory
  epoch.

Both are *churn-aware*: they subscribe (via the front end) to
:class:`~repro.churn.service.DirectoryEvent` notifications, dropping a
dead peer from every plan that routes to it (the remaining ranked spares
are promoted implicitly) and invalidating plans whose terms' directory
content changed.  Stale state is therefore bounded by crash-*detection*
latency, exactly like the directory itself.

Both classes follow the repo-wide memo-slot contract (reprolint
RPRL001): derived statistics are memoized in ``_stats_memo`` and every
mutating method resets the slot to ``None``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable

from ..synopses.base import SetSynopsis
from ..synopses.factory import SynopsisSpec

if TYPE_CHECKING:
    from ..datasets.queries import Query
    from ..routing.base import PeerSelector

__all__ = [
    "PlanKey",
    "plan_key",
    "selector_signature",
    "CachedPlan",
    "CacheStats",
    "RoutingPlanCache",
    "ReferenceSynopsisCache",
    "CachingSpec",
]


def selector_signature(selector: "PeerSelector") -> str:
    """A stable cache-key fragment naming a selector configuration.

    Plans ranked by different selectors — or by the same selector under
    different configuration (CORI's alpha, IQN's aggregation mode and
    stopping criterion) — must never alias, so the key delegates to
    :meth:`~repro.routing.base.PeerSelector.cache_signature`, which
    every configured selector extends with its ranking-relevant knobs.
    """
    return selector.cache_signature()


@dataclass(frozen=True)
class PlanKey:
    """Normalized identity of a routing decision.

    ``terms`` is the *sorted* term tuple: MINERVA's three phases are
    order-insensitive (PeerList fetches are per-term, scoring sums over
    the term set), so "pest safety" and "safety pest" share a plan.
    Everything else that changes the ranked outcome is part of the key.
    """

    terms: tuple[str, ...]
    selector: str
    initiator_id: str
    max_peers: int
    fallback_spares: int
    conjunctive: bool


def plan_key(
    query: "Query",
    selector: "PeerSelector",
    *,
    initiator_id: str,
    max_peers: int,
    fallback_spares: int,
    conjunctive: bool,
) -> PlanKey:
    """The :class:`PlanKey` under which ``query``'s plan is cached."""
    return PlanKey(
        terms=tuple(sorted(query.terms)),
        selector=selector_signature(selector),
        initiator_id=initiator_id,
        max_peers=max_peers,
        fallback_spares=fallback_spares,
        conjunctive=conjunctive,
    )


@dataclass(frozen=True)
class CachedPlan:
    """One cached routing decision: ranked peers plus streaming bounds.

    ``ranked`` is the selector's full ranking (selected peers first,
    then the fallback spares); ``bounds`` maps each ranked peer to an
    upper bound on any single document score it can return (used by the
    streamed top-k's early termination); ``epoch`` records the
    reference-synopsis epoch the plan was built under, for diagnostics.
    """

    ranked: tuple[str, ...]
    bounds: dict[str, float]
    terms: tuple[str, ...]
    epoch: int

    def without_peer(self, peer_id: str) -> "CachedPlan":
        """A copy with ``peer_id`` removed (spares shift up one rank)."""
        return CachedPlan(
            ranked=tuple(p for p in self.ranked if p != peer_id),
            bounds={p: b for p, b in self.bounds.items() if p != peer_id},
            terms=self.terms,
            epoch=self.epoch,
        )


@dataclass(frozen=True)
class CacheStats:
    """Immutable counters of one cache's behavior."""

    hits: int
    misses: int
    size: int
    invalidated: int = 0
    repaired: int = 0
    #: Entries dropped by the LRU size cap (0 on unbounded caches).
    evicted: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (0.0 when never used)."""
        total = self.lookups
        return self.hits / total if total else 0.0


class RoutingPlanCache:
    """Plans keyed by :class:`PlanKey`, invalidated by directory events.

    Secondary indexes (by ranked peer, by term) make event handling
    proportional to the number of *affected* plans, not the cache size.
    Invalidation policy, mirroring the failure semantics of
    :mod:`repro.churn`:

    - a peer going silent (``crash``/``leave``/``evict``) is *repaired
      out* of every plan routing to it via :meth:`drop_peer` — its slot
      falls to the next-ranked spare, so the hot path keeps its hit;
      a plan with no ranked peers left is dropped entirely;
    - a term whose directory content observably changed
      (``recover``/changed ``repost``/``expire``) invalidates every plan
      over that term via :meth:`invalidate_term` — the old ranking may
      now be wrong, so the next occurrence re-routes cold.
    """

    def __init__(self, *, max_plans: int | None = None) -> None:
        if max_plans is not None and max_plans <= 0:
            raise ValueError(f"max_plans must be positive, got {max_plans}")
        #: Size cap; ``None`` keeps the cache unbounded (historical
        #: behavior).  The plans dict doubles as the LRU order: hits and
        #: stores move the key to the end, eviction pops the front.
        self.max_plans = max_plans
        self._plans: dict[PlanKey, CachedPlan] = {}
        self._keys_by_peer: dict[str, set[PlanKey]] = {}
        self._keys_by_term: dict[str, set[PlanKey]] = {}
        self._hits = 0
        self._misses = 0
        self._invalidated = 0
        self._repaired = 0
        self._evicted = 0
        self._stats_memo: CacheStats | None = None

    def __len__(self) -> int:
        return len(self._plans)

    def lookup(self, key: PlanKey) -> CachedPlan | None:
        """The cached plan for ``key``, counting a hit or a miss."""
        plan = self._plans.get(key)
        if plan is None:
            self._misses += 1
        else:
            self._hits += 1
            # Refresh recency: re-insertion moves the key to the end.
            del self._plans[key]
            self._plans[key] = plan
        self._stats_memo = None
        return plan

    def store(self, key: PlanKey, plan: CachedPlan) -> None:
        """Cache ``plan`` under ``key`` (replacing any previous entry)."""
        if key in self._plans:
            self._unindex(key)
            del self._plans[key]
        self._plans[key] = plan
        for peer_id in plan.ranked:
            self._keys_by_peer.setdefault(peer_id, set()).add(key)
        for term in key.terms:
            self._keys_by_term.setdefault(term, set()).add(key)
        while self.max_plans is not None and len(self._plans) > self.max_plans:
            oldest = next(iter(self._plans))
            self._unindex(oldest)
            del self._plans[oldest]
            self._evicted += 1
        self._stats_memo = None

    def drop_peer(self, peer_id: str) -> int:
        """Remove a silent peer from every plan routing to it.

        Plans keep serving with their surviving ranked peers (implicit
        spare promotion); a plan left with nobody to route to is
        invalidated.  Returns the number of plans touched.
        """
        keys = self._keys_by_peer.pop(peer_id, None)
        if not keys:
            self._stats_memo = None
            return 0
        touched = 0
        for key in sorted(keys, key=lambda k: (k.terms, k.initiator_id)):
            repaired = self._plans[key].without_peer(peer_id)
            touched += 1
            if repaired.ranked:
                self._plans[key] = repaired
                self._repaired += 1
            else:
                self._unindex(key, skip_peer=peer_id)
                del self._plans[key]
                self._invalidated += 1
        self._stats_memo = None
        return touched

    def invalidate_term(self, term: str) -> int:
        """Drop every plan whose query touches ``term``.

        Returns the number of plans invalidated.
        """
        keys = self._keys_by_term.get(term)
        if not keys:
            self._stats_memo = None
            return 0
        dropped = 0
        for key in sorted(tuple(keys), key=lambda k: (k.terms, k.initiator_id)):
            self._unindex(key)
            del self._plans[key]
            self._invalidated += 1
            dropped += 1
        self._stats_memo = None
        return dropped

    def invalidate_terms(self, terms: Iterable[str]) -> int:
        """:meth:`invalidate_term` over several terms; returns the total."""
        return sum(self.invalidate_term(term) for term in terms)

    def invalidate_peers(self, peer_ids: Iterable[str]) -> int:
        """Drop every plan routing to *any* of ``peer_ids`` entirely.

        Unlike :meth:`drop_peer` (which repairs a plan around one dead
        peer), this is for cluster-level upheaval — a super-peer
        re-election changed which candidates a scoped plan should have
        seen, so every plan touching the affected cluster's members must
        re-route cold.  Returns the number of plans invalidated.
        """
        keys: set[PlanKey] = set()
        for peer_id in peer_ids:
            keys |= self._keys_by_peer.get(peer_id, set())
        dropped = 0
        for key in sorted(keys, key=lambda k: (k.terms, k.initiator_id)):
            self._unindex(key)
            del self._plans[key]
            self._invalidated += 1
            dropped += 1
        self._stats_memo = None
        return dropped

    def clear(self) -> None:
        """Drop every plan (counters are kept)."""
        self._invalidated += len(self._plans)
        self._plans.clear()
        self._keys_by_peer.clear()
        self._keys_by_term.clear()
        self._stats_memo = None

    def _unindex(self, key: PlanKey, *, skip_peer: str | None = None) -> None:
        plan = self._plans[key]
        for peer_id in plan.ranked:
            if peer_id == skip_peer:
                continue
            bucket = self._keys_by_peer.get(peer_id)
            if bucket is not None:
                bucket.discard(key)
                if not bucket:
                    del self._keys_by_peer[peer_id]
        for term in key.terms:
            bucket = self._keys_by_term.get(term)
            if bucket is not None:
                bucket.discard(key)
                if not bucket:
                    del self._keys_by_term[term]
        self._stats_memo = None

    def stats(self) -> CacheStats:
        """Current counters (memoized until the next mutation)."""
        if self._stats_memo is None:
            self._stats_memo = CacheStats(
                hits=self._hits,
                misses=self._misses,
                size=len(self._plans),
                invalidated=self._invalidated,
                repaired=self._repaired,
                evicted=self._evicted,
            )
        return self._stats_memo

    def __repr__(self) -> str:
        return f"RoutingPlanCache(plans={len(self._plans)}, stats={self.stats()})"


class ReferenceSynopsisCache:
    """Memoizes synopsis construction by content and directory epoch.

    IQN's novelty rescoring builds a synopsis of the initiator's result
    doc-ids for every query (and of every merged set as candidates are
    absorbed).  The built synopsis is a pure function of ``(spec,
    id-set)``, and all repo synopses are *non-mutating* (``union``
    returns a fresh instance), so one cached instance is safely shared
    across queries.  The ``epoch`` is bumped whenever directory content
    observably changes; keying on it keeps this cache's lifetime
    aligned with the plan cache's invalidation without tracking which
    id-sets a change affected.
    """

    def __init__(
        self, spec: SynopsisSpec, *, max_entries: int | None = None
    ) -> None:
        if max_entries is not None and max_entries <= 0:
            raise ValueError(
                f"max_entries must be positive, got {max_entries}"
            )
        self.spec = spec
        #: Size cap; ``None`` keeps the cache unbounded.  Entries evict
        #: in LRU order (the dict doubles as the recency list).
        self.max_entries = max_entries
        self._epoch = 0
        self._synopses: dict[tuple[int, frozenset[int]], SetSynopsis] = {}
        self._hits = 0
        self._misses = 0
        self._evicted = 0
        self._stats_memo: CacheStats | None = None

    @property
    def epoch(self) -> int:
        return self._epoch

    def __len__(self) -> int:
        return len(self._synopses)

    def build(self, ids: Iterable[int]) -> SetSynopsis:
        """The spec's synopsis of ``ids``, built once per (epoch, set)."""
        key = (self._epoch, frozenset(ids))
        cached = self._synopses.get(key)
        if cached is not None:
            self._hits += 1
            # Refresh recency: re-insertion moves the key to the end.
            del self._synopses[key]
            self._synopses[key] = cached
            self._stats_memo = None
            return cached
        self._misses += 1
        synopsis = self.spec.build(key[1])
        self._synopses[key] = synopsis
        while (
            self.max_entries is not None
            and len(self._synopses) > self.max_entries
        ):
            self._synopses.pop(next(iter(self._synopses)))
            self._evicted += 1
        self._stats_memo = None
        return synopsis

    def bump_epoch(self) -> int:
        """Invalidate everything: directory content observably changed."""
        self._epoch += 1
        self._synopses.clear()
        self._stats_memo = None
        return self._epoch

    def stats(self) -> CacheStats:
        """Current counters (memoized until the next mutation)."""
        if self._stats_memo is None:
            self._stats_memo = CacheStats(
                hits=self._hits,
                misses=self._misses,
                size=len(self._synopses),
                invalidated=self._epoch,
                evicted=self._evicted,
            )
        return self._stats_memo

    def __repr__(self) -> str:
        return (
            f"ReferenceSynopsisCache(spec={self.spec.label!r}, "
            f"epoch={self._epoch}, stats={self.stats()})"
        )


class CachingSpec(SynopsisSpec):
    """A :class:`SynopsisSpec` whose ``build`` memoizes through a cache.

    Dropped into :class:`~repro.routing.base.RoutingContext.spec` by the
    serving front end, so aggregation strategies (which call
    ``context.spec.build`` for the reference synopsis and every absorb)
    transparently share previously built synopses.  Construction copies
    the cached spec's fields, so ``label``/``size_in_bits``/equality of
    the *configuration* behave identically; only ``build`` changes.
    """

    _reference_cache: ReferenceSynopsisCache

    def __init__(self, cache: ReferenceSynopsisCache) -> None:
        spec = cache.spec
        super().__init__(
            kind=spec.kind,
            parameter=spec.parameter,
            seed=spec.seed,
            num_hashes=spec.num_hashes,
            bitmap_length=spec.bitmap_length,
        )
        # The base dataclass is frozen; the cache reference is not a
        # field of the configuration, so it bypasses the freeze.
        object.__setattr__(self, "_reference_cache", cache)

    def build(self, ids: Iterable[int]) -> SetSynopsis:
        return self._reference_cache.build(ids)
