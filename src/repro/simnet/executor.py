"""Networked query execution: the MINERVA pipeline as simulated messages.

:class:`SimNetExecutor` wraps a :class:`~repro.minerva.engine.MinervaEngine`
and runs the paper's three query phases over a
:class:`~repro.simnet.transport.Transport` in virtual time:

1. **PeerList fetch** — one RPC per query term, routed along the actual
   Chord lookup path (each hop a message adding latency and link load),
   answered by the owning peer from its directory node's store;
2. **routing** — the selector ranks candidates locally at the initiator
   (a configurable compute delay);
3. **forward + merge** — one RPC per selected peer, fanned out
   concurrently; each peer serves its local top-k after a service time.

Every RPC rides the retry policy, so lost messages and crashed peers
cost timeouts and backoff instead of raising: a query always completes,
with empty contributions from peers that never answered and a record of
who they were.  Multiple submitted queries interleave in virtual time —
their messages share links, so the M/M/1 queueing delay makes response
time a superlinear function of offered load (Section 8.2), which is the
whole point of simulating the network instead of costing it passively.

With an empty :class:`~repro.simnet.faults.FaultPlan` the selected peers,
merged document ids, and recall curve are identical to
:meth:`MinervaEngine.run_query` — the network changes *when*, not
*what*.  Accounting note: networked runs charge their messages to the
transport's cost model and to a per-query snapshot on the outcome; the
engine's own cost model is not touched.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Generator, Sequence

from ..datasets.queries import Query
from ..ir.merge import merge_results
from ..ir.metrics import relative_recall, result_ids
from ..ir.topk import ScoredDocument
from ..minerva.engine import (
    QUERY_HEADER_BITS,
    QUERY_TERM_BITS,
    RESULT_ENTRY_BITS,
    MinervaEngine,
    QueryOutcome,
)
from ..minerva.posts import PeerList
from ..net.cost import CostModel, MessageKinds
from ..net.latency import LatencyProfile
from ..routing.base import LocalView, PeerSelector, RoutingContext
from ..synopses.factory import SynopsisSpec
from ..topology.superpeer import SuperPeerTopology
from .clock import SimClock, SimFuture, gather, spawn
from .faults import FaultPlan
from .rpc import RetryPolicy, RpcHandler, RpcLayer, RpcResult
from .transport import Transport

__all__ = ["NetworkedQueryOutcome", "SimNetExecutor"]

#: Bits for a PeerList request: a 64-bit header plus one term token.
PEERLIST_REQUEST_BITS = 96


@dataclass(frozen=True)
class NetworkedQueryOutcome:
    """One query's result *and* its journey through the simulated network.

    ``outcome`` is the familiar :class:`~repro.minerva.engine.QueryOutcome`
    (recall curve, merged results, per-query cost snapshot); the fields
    around it say what the network did to get it: virtual start/finish
    times, which selected peers never answered (``timed_out_peers``),
    how many request attempts each forward took, and which query terms'
    directory lookups failed outright (``failed_terms`` — those terms
    contributed an empty PeerList to routing).
    """

    outcome: QueryOutcome
    started_ms: float
    finished_ms: float
    timed_out_peers: tuple[str, ...]
    attempts_by_peer: dict[str, int] = field(repr=False)
    failed_terms: tuple[str, ...] = ()
    directory_attempts: int = 0
    #: Selected peers that died mid-query: their forward timed out even
    #: though the directory still routed to them (stale-route detection).
    stale_routes: int = 0
    #: Spare peers successfully queried in place of dead selected peers.
    substituted_peers: tuple[str, ...] = ()
    #: Spare forwards attempted (successful or not).
    fallback_attempts: int = 0
    #: PeerList fetches retried at the owner's ring successor.
    directory_fallbacks: int = 0
    #: Messages answered by super-peers: the cluster-directory fetch plus
    #: one member fetch per winning cluster (hierarchical topology only).
    super_peer_fetches: int = 0
    #: Hierarchical fetches that fell back to degraded behavior: an
    #: unreachable super-peer (full flat re-fetch) or a winning cluster
    #: whose member fetch never answered (cluster skipped).
    topology_fallbacks: int = 0

    @property
    def latency_ms(self) -> float:
        """Virtual wall-clock from submission start to merged result."""
        return self.finished_ms - self.started_ms

    @property
    def query(self) -> Query:
        return self.outcome.query

    @property
    def selected(self) -> tuple[str, ...]:
        return self.outcome.selected

    @property
    def merged(self) -> tuple[ScoredDocument, ...]:
        return self.outcome.merged

    @property
    def recall_at(self) -> tuple[float, ...]:
        return self.outcome.recall_at

    @property
    def clusters_ranked(self) -> tuple[str, ...]:
        return self.outcome.clusters_ranked

    @property
    def final_recall(self) -> float:
        return self.outcome.final_recall

    @property
    def forward_retries(self) -> int:
        """Query forwards sent beyond the first attempt, summed over peers."""
        return sum(attempts - 1 for attempts in self.attempts_by_peer.values())

    @property
    def degraded(self) -> bool:
        """True when any peer or directory lookup failed to answer in time."""
        return bool(self.timed_out_peers or self.failed_terms)

    @property
    def fallback_successes(self) -> int:
        """Dead-peer forwards rescued by a spare peer's answer."""
        return len(self.substituted_peers)


class SimNetExecutor:
    """Runs engine queries as concurrent message flows in virtual time.

    Build it over a fully published engine (endpoint handlers are bound
    to the peers present at construction); then :meth:`submit` queries
    at chosen virtual times — or :meth:`run_workload` for an arrival
    process — and :meth:`run` to drive the clock until every query has
    completed.  Determinism: a fixed ``seed`` fixes message loss and
    workload arrivals, and event ordering is deterministic by
    construction, so two identical runs produce identical latencies.
    """

    def __init__(
        self,
        engine: MinervaEngine,
        *,
        profile: LatencyProfile | None = None,
        faults: FaultPlan | None = None,
        policy: RetryPolicy | None = None,
        seed: int = 0,
        peer_service_ms: float = 10.0,
        directory_service_ms: float = 2.0,
        routing_ms: float = 1.0,
        queue_window_ms: float = 1000.0,
    ) -> None:
        if min(peer_service_ms, directory_service_ms, routing_ms) < 0:
            raise ValueError("service times must be >= 0")
        self.engine = engine
        self.seed = seed
        self.clock = SimClock()
        self.transport = Transport(
            self.clock,
            profile=profile,
            faults=faults,
            seed=seed,
            queue_window_ms=queue_window_ms,
        )
        self.rpc = RpcLayer(self.transport, policy=policy)
        self.peer_service_ms = peer_service_ms
        self.directory_service_ms = directory_service_ms
        self.routing_ms = routing_ms
        self._peer_of_node = {
            node_id: peer_id
            for peer_id, node_id in engine.directory._node_of_peer.items()
        }
        self._jobs: list[SimFuture] = []
        for peer_id in engine.peers:
            self.rpc.serve(
                peer_id, MessageKinds.PEERLIST_FETCH, self._serve_peerlist(peer_id)
            )
            self.rpc.serve(
                peer_id, MessageKinds.QUERY_FORWARD, self._serve_query(peer_id)
            )
        if engine.topology.hierarchical:
            for peer_id in engine.peers:
                self.rpc.serve(
                    peer_id, MessageKinds.CLUSTER_FETCH, self._serve_clusters(peer_id)
                )
                self.rpc.serve(
                    peer_id, MessageKinds.MEMBER_FETCH, self._serve_members(peer_id)
                )
            profile_of = getattr(engine.topology, "latency_profile_of", None)
            if profile_of is not None:
                # Intra- vs inter-cluster links get their own latency
                # profiles; flat topologies leave the transport untouched.
                self.transport.profile_of = profile_of

    # -- server side -----------------------------------------------------------

    def _serve_peerlist(self, peer_id: str) -> RpcHandler:
        """Handler: serve a term's PeerList from this peer's directory node."""

        def handler(term: str) -> tuple[PeerList, int, float] | None:
            node_id = self.engine.directory._node_of_peer.get(peer_id)
            if node_id is None:
                return None  # departed since construction: no reply
            stored = self.engine.ring.node(node_id).store.get(
                self.engine.ring.key_id(term)
            )
            if stored is None:
                stored = PeerList(
                    term=term, peer_table=self.engine.directory.peer_table
                )
            return stored, stored.size_in_bits, self.directory_service_ms

        return handler

    def _serve_query(self, peer_id: str) -> RpcHandler:
        """Handler: answer a forwarded query with the local top-k."""

        def handler(
            payload: tuple[tuple[str, ...], int, bool]
        ) -> tuple[tuple[ScoredDocument, ...], int, float] | None:
            terms, k, conjunctive = payload
            peer = self.engine.peers.get(peer_id)
            if peer is None:
                return None  # departed since construction: no reply
            results = tuple(peer.answer_query(terms, k=k, conjunctive=conjunctive))
            return results, RESULT_ENTRY_BITS * len(results), self.peer_service_ms

        return handler

    def _serve_clusters(self, peer_id: str) -> RpcHandler:
        """Handler: a super-peer serving the per-term cluster directory."""

        def handler(terms: tuple[str, ...]) -> tuple[Any, int, float] | None:
            if peer_id not in self.engine.peers:
                return None  # departed since construction: no reply
            topology = self.engine.topology
            assert isinstance(topology, SuperPeerTopology)
            lists, bits = topology.cluster_peer_lists(tuple(terms))
            return lists, bits, self.directory_service_ms

        return handler

    def _serve_members(self, peer_id: str) -> RpcHandler:
        """Handler: a winning cluster's super-peer shipping member posts."""

        def handler(
            payload: tuple[str, tuple[str, ...]]
        ) -> tuple[Any, int, float] | None:
            label, terms = payload
            if peer_id not in self.engine.peers:
                return None  # departed since construction: no reply
            topology = self.engine.topology
            assert isinstance(topology, SuperPeerTopology)
            posts_by_term, bits = topology.member_posts(label, tuple(terms))
            return posts_by_term, bits, self.directory_service_ms

        return handler

    # -- client side -----------------------------------------------------------

    def submit(
        self,
        query: Query,
        selector: PeerSelector,
        *,
        at_ms: float | None = None,
        initiator_id: str | None = None,
        max_peers: int = 10,
        k: int = 50,
        peer_k: int | None = None,
        conjunctive: bool = False,
        successor_fallback: bool = False,
        fallback_spares: int = 0,
    ) -> SimFuture:
        """Schedule one query at virtual time ``at_ms`` (default: now).

        Returns a future resolving to a :class:`NetworkedQueryOutcome`
        once :meth:`run` has driven the simulation past its completion.
        Parameters mirror :meth:`MinervaEngine.run_query`, plus the
        churn-robustness knobs: with ``successor_fallback`` a failed
        PeerList fetch is retried once at the owner's current ring
        successor (where the replica lives after repair), and
        ``fallback_spares`` ranks that many extra candidates so a
        selected peer that died mid-query can be substituted by the
        next-best one.  Both default off, which preserves the exact
        pre-churn behavior.
        """
        self.engine._ensure_published(query)
        if peer_k is None:
            peer_k = k
        if peer_k <= 0:
            raise ValueError(f"peer_k must be positive, got {peer_k}")
        if fallback_spares < 0:
            raise ValueError(
                f"fallback_spares must be >= 0, got {fallback_spares}"
            )
        if initiator_id is None:
            peer_ids = sorted(self.engine.peers)
            initiator_id = peer_ids[query.query_id % len(peer_ids)]
        elif initiator_id not in self.engine.peers:
            raise KeyError(f"unknown peer {initiator_id!r}")
        result = SimFuture()

        def start() -> None:
            job = spawn(
                self._query_job(
                    query,
                    selector,
                    initiator_id,
                    max_peers,
                    k,
                    peer_k,
                    conjunctive,
                    successor_fallback,
                    fallback_spares,
                )
            )
            job.add_done_callback(lambda done: result.resolve(done.value))

        self.clock.schedule_at(
            self.clock.now if at_ms is None else at_ms, start
        )
        self._jobs.append(result)
        return result

    def run_workload(
        self,
        queries: Sequence[Query],
        selector: PeerSelector,
        *,
        interarrival_ms: float = 100.0,
        arrivals: str = "poisson",
        seed: int | None = None,
        start_ms: float = 0.0,
        **query_kwargs: Any,
    ) -> list[NetworkedQueryOutcome]:
        """Submit a whole workload under an arrival process and run it.

        ``interarrival_ms`` sets the offered load (mean gap between
        query submissions); ``arrivals`` is ``"poisson"`` (exponential
        gaps, seeded) or ``"uniform"`` (fixed gaps).  Queries genuinely
        overlap in virtual time, so higher offered load inflates
        per-query latency through shared-link queueing.
        """
        if interarrival_ms <= 0:
            raise ValueError(
                f"interarrival_ms must be positive, got {interarrival_ms}"
            )
        if arrivals not in ("poisson", "uniform"):
            raise ValueError(f"arrivals must be poisson or uniform, got {arrivals!r}")
        rng = random.Random(self.seed + 1 if seed is None else seed)
        at_ms = start_ms
        futures = []
        for query in queries:
            futures.append(
                self.submit(query, selector, at_ms=at_ms, **query_kwargs)
            )
            gap = (
                rng.expovariate(1.0 / interarrival_ms)
                if arrivals == "poisson"
                else interarrival_ms
            )
            at_ms += gap
        self.run()
        return [future.value for future in futures]

    def run(self, *, until_ms: float | None = None) -> list[NetworkedQueryOutcome]:
        """Drive the clock until idle; return all completed outcomes.

        Outcomes are in submission order.  Without ``until_ms`` every
        submitted query is guaranteed to finish (timeouts bound every
        wait), so an unfinished job indicates a simulator bug.
        """
        self.clock.run(until_ms=until_ms)
        unfinished = sum(1 for job in self._jobs if not job.done)
        if unfinished and until_ms is None:
            raise RuntimeError(
                f"{unfinished} queries never completed; simulation stalled"
            )
        return [job.value for job in self._jobs if job.done]

    # -- the query coroutine ---------------------------------------------------

    def _query_job(
        self,
        query: Query,
        selector: PeerSelector,
        initiator_id: str,
        max_peers: int,
        k: int,
        peer_k: int,
        conjunctive: bool,
        successor_fallback: bool = False,
        fallback_spares: int = 0,
    ) -> Generator[SimFuture, Any, NetworkedQueryOutcome]:
        engine = self.engine
        started = self.clock.now
        cost = CostModel()

        clusters_ranked: tuple[str, ...] = ()
        super_fetches = 0
        topology_fallbacks = 0
        if engine.topology.hierarchical:
            # Phase 1 (hierarchical) — cluster directory from the
            # initiator's super-peer, cluster ranking locally, then one
            # member fetch per winning cluster.
            scoped = yield from self._fetch_scoped_lists(
                query,
                initiator_id,
                cost,
                peer_k=peer_k,
                conjunctive=conjunctive,
                max_peers=max_peers,
                successor_fallback=successor_fallback,
            )
            (
                peer_lists,
                failed_terms,
                directory_attempts,
                directory_fallbacks,
                clusters_ranked,
                super_fetches,
                topology_fallbacks,
            ) = scoped
        else:
            # Phase 1 — PeerList fetches, all terms in flight concurrently,
            # each routed along its real Chord lookup path.
            fetch = yield from self._fetch_peer_lists(
                query, initiator_id, cost, successor_fallback
            )
            peer_lists, failed_terms, directory_attempts, directory_fallbacks = fetch

        # Phase 2 — routing, a local computation at the initiator.
        context, local = self.make_routing_context(
            query,
            initiator_id,
            peer_lists,
            peer_k=peer_k,
            conjunctive=conjunctive,
        )
        ranked = tuple(selector.rank(context, max_peers + fallback_spares))
        selected = ranked[:max_peers]
        spares = list(ranked[max_peers:])
        if self.routing_ms:
            yield self._sleep(self.routing_ms)

        # Phase 3 — forward to every selected peer concurrently; merge
        # whatever came back before the retries ran out.  A selected
        # peer that never answers is a stale route (the directory still
        # pointed at it); if spares were ranked, the next-best candidate
        # is queried in its place.
        query_bits = QUERY_HEADER_BITS + QUERY_TERM_BITS * len(query.terms)

        def forward(peer_id: str) -> SimFuture:
            return self.rpc.call(
                initiator_id,
                peer_id,
                MessageKinds.QUERY_FORWARD,
                payload=(query.terms, peer_k, conjunctive),
                request_bits=query_bits,
            )

        replies: list[RpcResult] = yield gather(
            [forward(peer_id) for peer_id in selected]
        )
        per_peer: dict[str, tuple[ScoredDocument, ...]] = {}
        timed_out: list[str] = []
        attempts: dict[str, int] = {}
        substituted: list[str] = []
        fallback_attempts = 0
        stale_routes = 0

        def account(peer_id: str, reply: RpcResult) -> bool:
            attempts[peer_id] = attempts.get(peer_id, 0) + reply.attempts
            cost.record(
                MessageKinds.QUERY_FORWARD,
                bits=query_bits * reply.attempts,
                count=reply.attempts,
            )
            if reply.ok:
                per_peer[peer_id] = reply.value
                cost.record(
                    MessageKinds.RESULT_RETURN,
                    bits=RESULT_ENTRY_BITS * len(reply.value),
                )
                return True
            per_peer[peer_id] = ()
            timed_out.append(peer_id)
            return False

        for peer_id, reply in zip(selected, replies):
            if account(peer_id, reply):
                continue
            stale_routes += 1
            while spares:
                candidate = spares.pop(0)
                fallback_attempts += 1
                substitute_reply: RpcResult = yield forward(candidate)
                if account(candidate, substitute_reply):
                    substituted.append(candidate)
                    break

        queried = (*selected, *substituted)
        reference = engine.reference_topk(query, k=k, conjunctive=conjunctive)
        covered = set(result_ids(local))
        recall_curve = [relative_recall(covered, reference)]
        for peer_id in queried:
            covered.update(result_ids(per_peer[peer_id]))
            recall_curve.append(relative_recall(covered, reference))
        merged = merge_results([local, *per_peer.values()], k=None)
        outcome = QueryOutcome(
            query=query,
            initiator_id=initiator_id,
            selected=queried,
            recall_at=tuple(recall_curve),
            merged=tuple(merged),
            reference_ids=reference,
            cost=cost.snapshot(),
            per_peer_results=per_peer,
            clusters_ranked=clusters_ranked,
            super_fetches=super_fetches,
        )
        return NetworkedQueryOutcome(
            outcome=outcome,
            started_ms=started,
            finished_ms=self.clock.now,
            timed_out_peers=tuple(timed_out),
            attempts_by_peer=attempts,
            failed_terms=tuple(failed_terms),
            directory_attempts=directory_attempts,
            stale_routes=stale_routes,
            substituted_peers=tuple(substituted),
            fallback_attempts=fallback_attempts,
            directory_fallbacks=directory_fallbacks,
            super_peer_fetches=super_fetches,
            topology_fallbacks=topology_fallbacks,
        )

    def _fetch_peer_lists(
        self,
        query: Query,
        initiator_id: str,
        cost: CostModel,
        successor_fallback: bool,
    ) -> Generator[
        SimFuture, Any, tuple[dict[str, PeerList], list[str], int, int]
    ]:
        """Phase 1 as a reusable sub-generator: fetch every term's PeerList.

        Issues one PEERLIST_FETCH per query term concurrently, each
        routed along the real Chord lookup path, charging DHT hops and
        payload bits to ``cost``.  Returns ``(peer_lists, failed_terms,
        directory_attempts, directory_fallbacks)``; a term whose
        directory stayed unreachable contributes an empty PeerList and
        lands in ``failed_terms``.  Shared by the one-shot query job and
        the serving front end (:mod:`repro.serving.frontend`), which
        must pay exactly this traffic on a routing-plan cache miss.
        """
        engine = self.engine
        start_node = engine.directory._node_of_peer.get(initiator_id)
        hops_by_term: dict[str, int] = {}
        calls = []
        for term in query.terms:
            lookup = engine.ring.lookup(term, start_node=start_node)
            hops_by_term[term] = lookup.hops
            calls.append(
                self.rpc.call(
                    initiator_id,
                    self._peer_of_node[lookup.owner],
                    MessageKinds.PEERLIST_FETCH,
                    payload=term,
                    request_bits=PEERLIST_REQUEST_BITS,
                    via=[self._peer_of_node[n] for n in lookup.path[1:-1]],
                )
            )
        responses: list[RpcResult] = yield gather(calls)
        peer_lists: dict[str, PeerList] = {}
        failed_terms: list[str] = []
        directory_attempts = 0
        directory_fallbacks = 0
        for term, response in zip(query.terms, responses):
            directory_attempts += response.attempts
            cost.record(
                MessageKinds.DHT_HOP,
                count=hops_by_term[term] * response.attempts,
            )
            if response.ok:
                peer_lists[term] = response.value
                cost.record(
                    MessageKinds.PEERLIST_FETCH,
                    bits=response.value.size_in_bits,
                    count=response.attempts,
                )
                continue
            cost.record(MessageKinds.PEERLIST_FETCH, count=response.attempts)
            if successor_fallback:
                # Stale route: the owner we looked up no longer answers.
                # Re-resolve on the (possibly repaired) ring and retry
                # once at the current owner — or, if that is still the
                # dead node, at its successor, where the replica lives.
                target = self._fallback_directory_peer(term, response.peer_id)
                if target is not None:
                    directory_fallbacks += 1
                    retry: RpcResult = yield self.rpc.call(
                        initiator_id,
                        target,
                        MessageKinds.PEERLIST_FETCH,
                        payload=term,
                        request_bits=PEERLIST_REQUEST_BITS,
                    )
                    directory_attempts += retry.attempts
                    if retry.ok:
                        peer_lists[term] = retry.value
                        cost.record(
                            MessageKinds.PEERLIST_FETCH,
                            bits=retry.value.size_in_bits,
                            count=retry.attempts,
                        )
                        continue
                    cost.record(
                        MessageKinds.PEERLIST_FETCH, count=retry.attempts
                    )
            # Directory unreachable for this term: route with what we
            # have rather than failing the query.
            peer_lists[term] = PeerList(
                term=term, peer_table=engine.directory.peer_table
            )
            failed_terms.append(term)
        return peer_lists, failed_terms, directory_attempts, directory_fallbacks

    def _fetch_scoped_lists(
        self,
        query: Query,
        initiator_id: str,
        cost: CostModel,
        *,
        peer_k: int,
        conjunctive: bool,
        max_peers: int,
        successor_fallback: bool,
    ) -> Generator[
        SimFuture,
        Any,
        tuple[
            dict[str, PeerList],
            list[str],
            int,
            int,
            tuple[str, ...],
            int,
            int,
        ],
    ]:
        """Phase 1 over a super-peer tier: two-phase scoped assembly.

        The initiator asks its own super-peer for the per-term cluster
        directory (one ``cluster_fetch`` RPC — a direct link, no DHT
        hops), ranks clusters locally, then pulls each winning cluster's
        member posts from that cluster's super-peer (one ``member_fetch``
        RPC per winner).  An unreachable super-peer degrades to the full
        flat fetch (counted as a topology fallback); a winning cluster
        whose member fetch never answers is skipped (also counted).
        Returns ``(peer_lists, failed_terms, directory_attempts,
        directory_fallbacks, clusters_ranked, super_fetches,
        topology_fallbacks)``.
        """
        engine = self.engine
        topology = engine.topology
        assert isinstance(topology, SuperPeerTopology)
        unique_terms = tuple(dict.fromkeys(query.terms))
        request_bits = QUERY_HEADER_BITS + QUERY_TERM_BITS * len(unique_terms)
        super_id = topology.super_peer_of(initiator_id) or initiator_id
        reply: RpcResult = yield self.rpc.call(
            initiator_id,
            super_id,
            MessageKinds.CLUSTER_FETCH,
            payload=unique_terms,
            request_bits=request_bits,
        )
        directory_attempts = reply.attempts
        if not reply.ok:
            cost.record(MessageKinds.CLUSTER_FETCH, count=reply.attempts)
            flat = yield from self._fetch_peer_lists(
                query, initiator_id, cost, successor_fallback
            )
            peer_lists, failed_terms, flat_attempts, directory_fallbacks = flat
            return (
                peer_lists,
                failed_terms,
                directory_attempts + flat_attempts,
                directory_fallbacks,
                (),
                0,
                1,
            )
        cluster_lists: dict[str, PeerList] = reply.value
        cluster_bits = sum(pl.size_in_bits for pl in cluster_lists.values())
        cost.record(
            MessageKinds.CLUSTER_FETCH, bits=cluster_bits, count=reply.attempts
        )
        local_view = engine.local_view(
            query, initiator_id, k=peer_k, conjunctive=conjunctive
        )
        winners = topology.rank_clusters(
            query,
            initiator=local_view,
            conjunctive=conjunctive,
            budget=topology.resolve_cluster_budget(max_peers),
        )
        member_replies: list[RpcResult] = yield gather(
            [
                self.rpc.call(
                    initiator_id,
                    topology.super_of_cluster(label),
                    MessageKinds.MEMBER_FETCH,
                    payload=(label, unique_terms),
                    request_bits=request_bits,
                )
                for label in winners
            ]
        )
        peer_lists = {
            term: PeerList(term=term, peer_table=engine.directory.peer_table)
            for term in unique_terms
        }
        super_fetches = 1
        topology_fallbacks = 0
        for label, member_reply in zip(winners, member_replies):
            directory_attempts += member_reply.attempts
            if not member_reply.ok:
                cost.record(
                    MessageKinds.MEMBER_FETCH, count=member_reply.attempts
                )
                topology_fallbacks += 1
                continue
            super_fetches += 1
            posts_by_term: dict[str, list] = member_reply.value
            member_bits = sum(
                post.size_in_bits
                for posts in posts_by_term.values()
                for post in posts
            )
            cost.record(
                MessageKinds.MEMBER_FETCH,
                bits=member_bits,
                count=member_reply.attempts,
            )
            for term, posts in posts_by_term.items():
                for post in posts:
                    peer_lists[term].add(post, retain=False)
        return (
            peer_lists,
            [],
            directory_attempts,
            0,
            tuple(winners),
            super_fetches,
            topology_fallbacks,
        )

    def make_routing_context(
        self,
        query: Query,
        initiator_id: str,
        peer_lists: dict[str, PeerList],
        *,
        peer_k: int,
        conjunctive: bool,
        spec: SynopsisSpec | None = None,
    ) -> tuple[RoutingContext, tuple[ScoredDocument, ...]]:
        """Assemble the Phase-2 routing context from fetched PeerLists.

        Executes the query locally at the initiator (seeding IQN's
        reference synopsis) and returns ``(context, local_results)``.
        ``spec`` overrides the engine's synopsis spec — the serving
        layer passes a build-memoizing wrapper so reference synopses
        shared across queries are constructed once.
        """
        engine = self.engine
        initiator = engine.peers[initiator_id]
        local = tuple(
            initiator.answer_query(query.terms, k=peer_k, conjunctive=conjunctive)
        )
        context = RoutingContext(
            query=query,
            peer_lists=peer_lists,
            num_peers=len(engine.peers),
            spec=engine.spec if spec is None else spec,
            initiator=LocalView(
                peer_id=initiator_id,
                result_doc_ids=result_ids(local),
                doc_ids_by_term={
                    term: initiator.local_doc_ids(term) for term in query.terms
                },
            ),
            conjunctive=conjunctive,
        )
        return context, local

    def _fallback_directory_peer(self, term: str, dead_peer: str) -> str | None:
        """Where to retry a PeerList fetch after ``dead_peer`` went silent.

        Re-resolves the term's owner on the *current* ring: if repair
        already evicted the dead node, that is the new owner holding the
        handed-off key range; if the crash is not yet detected, the
        owner's immediate successor holds the replica.  Returns None
        when no distinct live candidate exists.
        """
        ring = self.engine.ring
        position = ring.key_id(term)
        for candidate_id in (
            ring.successor_of(position),
            ring.successor_of(ring.successor_of(position) + 1),
        ):
            peer_id = self._peer_of_node.get(candidate_id)
            if (
                peer_id is not None
                and peer_id != dead_peer
                and not self.transport.is_down(peer_id)
            ):
                return peer_id
        return None

    def _sleep(self, delay_ms: float) -> SimFuture:
        future = SimFuture()
        self.clock.schedule(delay_ms, future.resolve)
        return future

    def __repr__(self) -> str:
        return (
            f"SimNetExecutor(engine={self.engine!r}, "
            f"clock={self.clock!r}, jobs={len(self._jobs)})"
        )
