"""Request/response with timeouts and exponential-backoff retry.

The transport is fire-and-forget; this layer makes it usable for the
query pipeline.  A *server* registers a handler per ``(peer, kind)``;
a *client* issues :meth:`RpcLayer.call`, which

- routes the request (optionally via DHT hops), waits ``timeout_ms``,
  and retries with exponential backoff while attempts remain;
- resolves to an :class:`RpcResult` either way — ``ok=False`` after the
  final timeout is a *result*, not an exception, so callers degrade
  gracefully (a query completes with partial results and reports which
  peers timed out rather than raising).

A reply that arrives after a retry was already sent still completes the
call (first answer wins); duplicate replies are ignored.  Retries are
real messages: they are charged to the transport's cost model and add
load to the already-struggling link, which is exactly how timeout storms
behave on real networks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Sequence

from .clock import SimFuture
from .transport import Message, Transport

__all__ = ["RetryPolicy", "RpcResult", "RpcLayer"]


@dataclass(frozen=True)
class RetryPolicy:
    """Timeout and exponential-backoff configuration for one RPC class.

    Attempt ``i`` (0-based) waits ``timeout_ms * backoff**i`` before
    giving up, capped at ``max_timeout_ms``; after ``max_attempts``
    unanswered attempts the call fails.  ``max_attempts=1`` means no
    retries at all.
    """

    timeout_ms: float = 500.0
    max_attempts: int = 3
    backoff: float = 2.0
    max_timeout_ms: float = 8000.0

    def __post_init__(self) -> None:
        if self.timeout_ms <= 0:
            raise ValueError(f"timeout_ms must be positive, got {self.timeout_ms}")
        if self.max_attempts < 1:
            raise ValueError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.backoff < 1.0:
            raise ValueError(f"backoff must be >= 1, got {self.backoff}")
        if self.max_timeout_ms < self.timeout_ms:
            raise ValueError("max_timeout_ms must be >= timeout_ms")

    def timeout_for(self, attempt: int) -> float:
        """Timeout for the given 0-based attempt index."""
        if attempt < 0:
            raise ValueError(f"attempt must be >= 0, got {attempt}")
        return min(self.max_timeout_ms, self.timeout_ms * self.backoff**attempt)


@dataclass(frozen=True)
class RpcResult:
    """Outcome of one call: a reply, or a final timeout.

    ``attempts`` counts requests actually sent (1 = no retry needed);
    ``latency_ms`` spans first request to reply (or to giving up).
    """

    ok: bool
    value: Any
    peer_id: str
    attempts: int
    latency_ms: float

    @property
    def timed_out(self) -> bool:
        return not self.ok

    @property
    def retries(self) -> int:
        """Requests sent beyond the first."""
        return self.attempts - 1


#: A server handler: payload -> (reply_payload, reply_bits, service_ms),
#: or None to silently drop the request (the client will time out).
RpcHandler = Callable[[Any], "tuple[Any, int, float] | None"]


class RpcLayer:
    """Client/server plumbing over a :class:`Transport`."""

    def __init__(
        self, transport: Transport, *, policy: RetryPolicy | None = None
    ) -> None:
        self.transport = transport
        self.clock = transport.clock
        self.policy = policy or RetryPolicy()
        self._handlers: dict[tuple[str, str], RpcHandler] = {}

    def serve(self, peer_id: str, kind: str, handler: RpcHandler) -> None:
        """Register ``handler`` for ``kind`` requests addressed to ``peer_id``.

        The handler runs at request-delivery time and returns
        ``(reply_payload, reply_bits, service_ms)``; the reply leaves
        the server ``service_ms`` (scaled by the peer's fault-plan
        slowdown) after the request arrived.
        """
        key = (peer_id, kind)
        if key in self._handlers:
            raise ValueError(f"handler for {key} already registered")
        self._handlers[key] = handler

    def call(
        self,
        src: str,
        dst: str,
        kind: str,
        *,
        payload: Any = None,
        request_bits: int = 0,
        reply_kind: str | None = None,
        via: Sequence[str] = (),
        policy: RetryPolicy | None = None,
    ) -> SimFuture:
        """Issue one reliable(ish) request; resolves to an :class:`RpcResult`.

        ``via`` lists intermediate peers the request routes through
        (DHT lookup hops); the reply always returns directly — the
        server learned the client's address from the request.  A
        destination with no handler for ``kind`` (departed peer, stale
        Post) is a black hole: every attempt times out and the call
        resolves ``ok=False``.
        """
        policy = policy or self.policy
        reply_kind = reply_kind or f"{kind}_reply"
        future = SimFuture()
        started = self.clock.now
        state = {"attempts": 0}

        def finish(ok: bool, value: Any) -> None:
            if future.done:
                return  # late reply after giving up, or duplicate reply
            future.resolve(
                RpcResult(
                    ok=ok,
                    value=value,
                    peer_id=dst,
                    attempts=state["attempts"],
                    latency_ms=self.clock.now - started,
                )
            )

        def on_request(message: Message) -> None:
            handler = self._handlers.get((dst, kind))
            if handler is None:
                return  # black hole: the client's timer handles it
            response = handler(message.payload)
            if response is None:
                return  # the server declined to answer: same as a black hole
            reply_payload, reply_bits, service_ms = response
            service_ms *= self.transport.slowdown(dst)

            def deliver_reply() -> bool:
                finish(True, reply_payload)
                return True

            def send_reply() -> None:
                self.transport._transmit(
                    reply_kind, dst, src, reply_bits, deliver_reply
                )

            self.clock.schedule(service_ms, send_reply)

        def attempt() -> None:
            index = state["attempts"]
            state["attempts"] += 1
            self.transport.send_via(
                kind,
                src,
                dst,
                via=via,
                bits=request_bits,
                payload=payload,
                on_deliver=on_request,
            )

            def on_timeout() -> None:
                if future.done:
                    return
                if state["attempts"] >= policy.max_attempts:
                    finish(False, None)
                else:
                    attempt()

            self.clock.schedule(policy.timeout_for(index), on_timeout)

        attempt()
        return future

    def __repr__(self) -> str:
        return f"RpcLayer(handlers={len(self._handlers)}, policy={self.policy})"
