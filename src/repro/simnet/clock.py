"""Virtual time: the discrete-event core of the network simulator.

Everything in :mod:`repro.simnet` advances a single :class:`SimClock` —
a priority queue of ``(fire_time, insertion_order, callback)`` events.
Two properties make whole simulations exactly reproducible:

- events at the same virtual time fire in insertion order (the heap is
  tie-broken by a monotonically increasing sequence number), and
- the only randomness anywhere is drawn from seeded
  :class:`random.Random` instances whose draw order is itself fixed by
  the event order.

Concurrency is expressed with generator coroutines: a protocol step is
a generator that ``yield``\\ s :class:`SimFuture` objects (or a
:func:`gather` of several) and is driven by :func:`spawn`.  This keeps
multi-phase flows — DHT lookup, then routing, then a fan-out of query
forwards — readable as straight-line code while many of them interleave
in virtual time.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Generator, Iterable

__all__ = ["SimClock", "SimFuture", "spawn", "gather"]


class SimClock:
    """A deterministic discrete-event scheduler with a millisecond clock.

    Time only moves inside :meth:`run`, and only forward, to the fire
    time of the next scheduled event.  Nothing here is wall-clock: a
    simulated hour of heavy traffic runs in however long the callbacks
    take to execute.
    """

    def __init__(self) -> None:
        self._now = 0.0
        self._heap: list[tuple[float, int, Callable[[], None]]] = []
        self._seq = itertools.count()
        self._cancelled: set[int] = set()

    @property
    def now(self) -> float:
        """Current virtual time in milliseconds."""
        return self._now

    @property
    def pending(self) -> int:
        """Number of events still scheduled (including cancelled ones)."""
        return len(self._heap)

    def schedule(self, delay_ms: float, fn: Callable[[], None]) -> int:
        """Run ``fn`` ``delay_ms`` virtual milliseconds from now.

        Returns a handle usable with :meth:`cancel`.
        """
        if delay_ms < 0:
            raise ValueError(f"delay_ms must be >= 0, got {delay_ms}")
        return self.schedule_at(self._now + delay_ms, fn)

    def schedule_at(self, time_ms: float, fn: Callable[[], None]) -> int:
        """Run ``fn`` at absolute virtual time ``time_ms``."""
        if time_ms < self._now:
            raise ValueError(
                f"cannot schedule at {time_ms} ms; clock is at {self._now} ms"
            )
        handle = next(self._seq)
        heapq.heappush(self._heap, (time_ms, handle, fn))
        return handle

    def cancel(self, handle: int) -> None:
        """Cancel a scheduled event (a no-op if it already fired)."""
        self._cancelled.add(handle)

    def run(
        self, *, until_ms: float | None = None, max_events: int = 5_000_000
    ) -> int:
        """Fire events in order until the heap drains (or ``until_ms``).

        Returns the number of events fired.  ``max_events`` is a
        runaway-simulation guard (a retry loop that never converges);
        exceeding it raises ``RuntimeError``.
        """
        fired = 0
        while self._heap:
            time_ms, handle, fn = self._heap[0]
            if until_ms is not None and time_ms > until_ms:
                break
            heapq.heappop(self._heap)
            if handle in self._cancelled:
                self._cancelled.discard(handle)
                continue
            self._now = max(self._now, time_ms)
            fn()
            fired += 1
            if fired > max_events:
                raise RuntimeError(
                    f"simulation exceeded {max_events} events; "
                    "likely a retry loop that never converges"
                )
        if until_ms is not None:
            self._now = max(self._now, until_ms)
        return fired

    def __repr__(self) -> str:
        return f"SimClock(now={self._now:.1f}ms, pending={self.pending})"


class SimFuture:
    """A write-once value that simulation coroutines can wait on."""

    __slots__ = ("_done", "_value", "_callbacks")

    def __init__(self) -> None:
        self._done = False
        self._value: Any = None
        self._callbacks: list[Callable[[SimFuture], None]] = []

    @property
    def done(self) -> bool:
        return self._done

    @property
    def value(self) -> Any:
        if not self._done:
            raise RuntimeError("future is not resolved yet")
        return self._value

    def resolve(self, value: Any = None) -> None:
        """Set the value and fire callbacks (exactly once)."""
        if self._done:
            raise RuntimeError("future already resolved")
        self._done = True
        self._value = value
        callbacks, self._callbacks = self._callbacks, []
        for callback in callbacks:
            callback(self)

    def add_done_callback(self, fn: Callable[[SimFuture], None]) -> None:
        """Call ``fn(self)`` when resolved (immediately if already done)."""
        if self._done:
            fn(self)
        else:
            self._callbacks.append(fn)

    def __repr__(self) -> str:
        state = f"value={self._value!r}" if self._done else "pending"
        return f"SimFuture({state})"


def spawn(coroutine: Generator[SimFuture, Any, Any]) -> SimFuture:
    """Drive a generator coroutine; resolve with its ``return`` value.

    The coroutine ``yield``\\ s :class:`SimFuture` objects; each yielded
    future's value is sent back into the generator when it resolves.
    """
    result = SimFuture()

    def step(resolved: SimFuture | None = None) -> None:
        try:
            waited = coroutine.send(None if resolved is None else resolved.value)
        except StopIteration as stop:
            result.resolve(stop.value)
            return
        waited.add_done_callback(step)

    step()
    return result


def gather(futures: Iterable[SimFuture]) -> SimFuture:
    """A future resolving to the list of all input futures' values.

    Resolution order does not matter; the result list preserves the
    input order.  An empty input resolves immediately to ``[]``.
    """
    pending = list(futures)
    result = SimFuture()
    if not pending:
        result.resolve([])
        return result
    remaining = {"count": len(pending)}

    def on_done(_: SimFuture) -> None:
        remaining["count"] -= 1
        if remaining["count"] == 0:
            result.resolve([future.value for future in pending])

    for future in pending:
        future.add_done_callback(on_done)
    return result
