"""Discrete-event network simulation for the MINERVA testbed.

Turns the passive cost model into an actual transport: a virtual clock
(:class:`SimClock`), typed message delivery with load-dependent M/M/1
latency (:class:`Transport`), fault injection (:class:`FaultPlan` —
loss, crashes, slowdowns, scheduled churn), an RPC layer with timeouts
and exponential-backoff retry (:class:`RetryPolicy`), and a
:class:`SimNetExecutor` that runs engine queries as concurrent message
flows so load, loss, and overlap-in-time become observable.
"""

from .clock import SimClock, SimFuture, gather, spawn
from .executor import NetworkedQueryOutcome, SimNetExecutor
from .faults import ChurnEvent, FaultPlan
from .rpc import RetryPolicy, RpcLayer, RpcResult
from .transport import Message, Transport, TransportStats

__all__ = [
    "SimClock",
    "SimFuture",
    "spawn",
    "gather",
    "Message",
    "Transport",
    "TransportStats",
    "ChurnEvent",
    "FaultPlan",
    "RetryPolicy",
    "RpcLayer",
    "RpcResult",
    "SimNetExecutor",
    "NetworkedQueryOutcome",
]
