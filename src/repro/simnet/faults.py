"""Fault injection plans: loss, crashes, slowdowns, scheduled churn.

Section 1.1 motivates the P2P architecture with "resilience to failures
and churn"; the engine-level churn API (:meth:`MinervaEngine.add_peer` /
``remove_peer``) covers the *directory* consequences, while a
:class:`FaultPlan` covers the *transport* consequences: messages that
vanish, peers that stop answering mid-run, and peers that answer slowly
enough to trip timeouts.

A plan is pure data — the :class:`~repro.simnet.transport.Transport`
interprets it: ``loss_rate`` is applied per transmitted message (seeded
RNG), ``slowdowns`` scale a peer's service and transmission times, and
``churn`` events are scheduled on the virtual clock when the transport
is built.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

__all__ = ["ChurnEvent", "FaultPlan"]

#: Valid ChurnEvent kinds.
CHURN_KINDS = ("crash", "recover")


@dataclass(frozen=True)
class ChurnEvent:
    """One scheduled membership change at a virtual time.

    ``crash`` makes the peer drop every message from then on (sent *and*
    received — including messages already in flight toward it);
    ``recover`` brings it back.  A crash is abrupt: the peer's directory
    Posts stay where they are, so routers keep selecting it and queries
    observe timeouts — the stale-post failure mode of Section 1.1.
    """

    at_ms: float
    peer_id: str
    kind: str = "crash"

    def __post_init__(self) -> None:
        if self.at_ms < 0:
            raise ValueError(f"at_ms must be >= 0, got {self.at_ms}")
        if self.kind not in CHURN_KINDS:
            raise ValueError(
                f"kind must be one of {CHURN_KINDS}, got {self.kind!r}"
            )
        if not self.peer_id:
            raise ValueError("peer_id must be non-empty")


@dataclass(frozen=True)
class FaultPlan:
    """What goes wrong, and when.

    - ``loss_rate`` — probability in ``[0, 1)`` that any single
      transmitted message silently disappears;
    - ``slowdowns`` — per-peer multiplicative factors (> 1 = slower)
      applied to that peer's link transmission and service times,
      modeling overloaded or thin-pipe peers;
    - ``churn`` — scheduled :class:`ChurnEvent` crashes/recoveries.

    The default plan injects nothing, which is the parity case: a
    networked query under ``FaultPlan()`` returns exactly the documents
    the in-process engine returns.
    """

    loss_rate: float = 0.0
    slowdowns: Mapping[str, float] = field(default_factory=dict)
    churn: tuple[ChurnEvent, ...] = ()

    def __post_init__(self) -> None:
        if not 0.0 <= self.loss_rate < 1.0:
            raise ValueError(
                f"loss_rate must be in [0, 1), got {self.loss_rate}"
            )
        for peer_id, factor in self.slowdowns.items():
            if factor <= 0:
                raise ValueError(
                    f"slowdown factor for {peer_id!r} must be > 0, got {factor}"
                )
        # Normalize arbitrary iterables to a tuple for hashability.
        object.__setattr__(self, "churn", tuple(self.churn))

    @property
    def is_empty(self) -> bool:
        """True when the plan injects no fault of any kind."""
        return not (self.loss_rate or self.slowdowns or self.churn)

    def slowdown(self, peer_id: str) -> float:
        """The service/transmission multiplier for ``peer_id`` (1.0 = none)."""
        return self.slowdowns.get(peer_id, 1.0)
