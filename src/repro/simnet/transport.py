"""Message delivery between peer endpoints with load-dependent latency.

The passive cost model (:mod:`repro.net.cost`) counts messages; this
transport *delivers* them in virtual time.  Each transmission pays

- a service time from the :class:`~repro.net.latency.LatencyProfile`
  (per-message overhead + payload transmission, scaled by the receiving
  peer's :class:`~repro.simnet.faults.FaultPlan` slowdown), and
- an M/M/1 queueing delay from
  :func:`~repro.net.latency.mm1_response_time`: the destination link's
  utilization is estimated from its recent arrival history, so
  concurrent queries visibly inflate each other's latency — the
  "response times are a highly superlinear function of load" effect of
  Section 8.2, now observable instead of asserted.

Faults are applied here: per-message loss (seeded RNG), crashed peers
swallowing traffic in both directions, and scheduled churn events
registered on the clock at construction time.
"""

from __future__ import annotations

import random
from collections import defaultdict, deque
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from ..net.cost import CostModel, MessageKinds
from ..net.latency import LatencyProfile, mm1_response_time
from .clock import SimClock
from .faults import FaultPlan

__all__ = ["Message", "TransportStats", "Transport"]


@dataclass(frozen=True)
class Message:
    """One typed message as seen by a receiving endpoint."""

    kind: str
    src: str
    dst: str
    bits: int
    payload: Any
    sent_at_ms: float


@dataclass
class TransportStats:
    """Running totals of what the wire actually did."""

    sent: int = 0
    delivered: int = 0
    lost: int = 0
    dropped_crashed: int = 0
    dropped_unknown: int = 0
    by_kind: dict[str, int] = field(default_factory=dict)

    @property
    def dropped(self) -> int:
        """Everything that left a sender and never arrived."""
        return self.lost + self.dropped_crashed + self.dropped_unknown


class Transport:
    """Delivers typed messages between registered peer endpoints.

    ``send`` dispatches to the destination's registered handler;
    ``send_via`` routes hop-by-hop through intermediate peers (the DHT
    lookup path), charging each hop's latency and link load.  Any leg
    can lose the message; senders learn nothing — reliability is the
    RPC layer's job (:mod:`repro.simnet.rpc`).
    """

    def __init__(
        self,
        clock: SimClock,
        *,
        profile: LatencyProfile | None = None,
        faults: FaultPlan | None = None,
        seed: int = 0,
        cost: CostModel | None = None,
        queue_window_ms: float = 1000.0,
        max_utilization: float = 0.95,
    ) -> None:
        if queue_window_ms <= 0:
            raise ValueError(
                f"queue_window_ms must be positive, got {queue_window_ms}"
            )
        if not 0.0 <= max_utilization < 1.0:
            raise ValueError(
                f"max_utilization must be in [0, 1), got {max_utilization}"
            )
        self.clock = clock
        self.profile = profile or LatencyProfile()
        #: Optional per-link profile override ``(src, dst) -> profile``;
        #: a hierarchical topology installs its intra-/inter-cluster
        #: profiles here (returning None keeps the base profile for that
        #: link).  Unset, every link uses :attr:`profile` — the flat
        #: behavior, bit-identical to before this hook existed.
        self.profile_of: Callable[[str, str], LatencyProfile | None] | None = None
        self.faults = faults or FaultPlan()
        self.rng = random.Random(seed)
        self.cost = cost or CostModel()
        self.queue_window_ms = queue_window_ms
        self.max_utilization = max_utilization
        self.stats = TransportStats()
        self._handlers: dict[str, Callable[[Message], None]] = {}
        self._down: set[str] = set()
        #: Per-destination-link arrival times within the sliding window,
        #: the basis of the M/M/1 utilization estimate.
        self._arrivals: dict[str, deque[float]] = defaultdict(deque)
        for event in self.faults.churn:
            action = self.crash if event.kind == "crash" else self.recover
            clock.schedule_at(
                event.at_ms, lambda a=action, p=event.peer_id: a(p)
            )

    # -- endpoints and peer state -------------------------------------------

    def register(self, peer_id: str, handler: Callable[[Message], None]) -> None:
        """Attach ``peer_id``'s message handler (one per peer)."""
        if peer_id in self._handlers:
            raise ValueError(f"endpoint {peer_id!r} already registered")
        self._handlers[peer_id] = handler

    def crash(self, peer_id: str) -> None:
        """Abruptly take ``peer_id`` off the network (drops in-flight traffic)."""
        self._down.add(peer_id)

    def recover(self, peer_id: str) -> None:
        """Bring a crashed peer back."""
        self._down.discard(peer_id)

    def is_down(self, peer_id: str) -> bool:
        return peer_id in self._down

    def slowdown(self, peer_id: str) -> float:
        """The fault plan's service-time multiplier for ``peer_id``."""
        return self.faults.slowdown(peer_id)

    # -- latency model -------------------------------------------------------

    def _profile_for(self, dst: str, src: str | None) -> LatencyProfile:
        if self.profile_of is not None and src is not None:
            override = self.profile_of(src, dst)
            if override is not None:
                return override
        return self.profile

    def service_time_ms(
        self, dst: str, bits: int, *, src: str | None = None
    ) -> float:
        """Wire service time for one message to ``dst`` (no queueing)."""
        profile = self._profile_for(dst, src)
        base = (
            profile.per_message_ms + bits / 1000.0 * profile.per_kilobit_ms
        )
        return base * self.faults.slowdown(dst)

    def link_delay_ms(
        self, dst: str, bits: int, *, src: str | None = None
    ) -> float:
        """Total one-way delay to ``dst`` now: service time x M/M/1 factor.

        The destination link's utilization is estimated as (arrivals in
        the last ``queue_window_ms``) x (this message's service time) /
        window, clamped to ``max_utilization`` so the queue stays
        stable; :func:`mm1_response_time` then turns service time into
        response time.  Recording the arrival *before* estimating means
        an otherwise idle link still pays a tiny queueing factor — and a
        busy one pays superlinearly.
        """
        service = self.service_time_ms(dst, bits, src=src)
        if service <= 0:
            return 0.0
        window = self._arrivals[dst]
        now = self.clock.now
        while window and window[0] <= now - self.queue_window_ms:
            window.popleft()
        window.append(now)
        utilization = min(
            self.max_utilization, len(window) * service / self.queue_window_ms
        )
        return mm1_response_time(service, utilization)

    def link_utilization(self, dst: str) -> float:
        """Fraction of the sliding window occupied by arrivals at ``dst``."""
        window = self._arrivals[dst]
        now = self.clock.now
        while window and window[0] <= now - self.queue_window_ms:
            window.popleft()
        service = self.service_time_ms(dst, 0)
        return min(
            self.max_utilization, len(window) * service / self.queue_window_ms
        )

    # -- transmission --------------------------------------------------------

    def _transmit(
        self,
        kind: str,
        src: str,
        dst: str,
        bits: int,
        on_deliver: Callable[[], bool],
    ) -> None:
        """One point-to-point transmission; ``on_deliver`` fires at arrival.

        The sender is charged (cost + stats) whether or not the message
        survives: bits leave the NIC before the network eats them.
        ``on_deliver`` returns whether an endpoint accepted the message;
        ``False`` means it arrived at a black hole (no such endpoint).
        """
        self.cost.record(kind, bits=bits)
        self.stats.sent += 1
        self.stats.by_kind[kind] = self.stats.by_kind.get(kind, 0) + 1
        if src in self._down:
            self.stats.dropped_crashed += 1
            return
        if self.faults.loss_rate and self.rng.random() < self.faults.loss_rate:
            self.stats.lost += 1
            return
        delay = self.link_delay_ms(dst, bits, src=src)

        def deliver() -> None:
            if dst in self._down:
                self.stats.dropped_crashed += 1
                return
            if on_deliver():
                self.stats.delivered += 1
            else:
                self.stats.dropped_unknown += 1

        self.clock.schedule(delay, deliver)

    def send(
        self,
        kind: str,
        src: str,
        dst: str,
        *,
        bits: int = 0,
        payload: Any = None,
    ) -> None:
        """Send one message to ``dst``'s registered handler.

        Fire-and-forget: the sender cannot observe loss.  A destination
        with no registered endpoint is a black hole (counted in
        ``stats.dropped_unknown``) — exactly what a stale directory Post
        pointing at a vanished peer looks like from the outside.
        """
        message = Message(
            kind=kind,
            src=src,
            dst=dst,
            bits=bits,
            payload=payload,
            sent_at_ms=self.clock.now,
        )

        def deliver() -> bool:
            handler = self._handlers.get(dst)
            if handler is None:
                return False
            handler(message)
            return True

        self._transmit(kind, src, dst, bits, deliver)

    def send_via(
        self,
        kind: str,
        src: str,
        dst: str,
        *,
        via: Sequence[str] = (),
        bits: int = 0,
        payload: Any = None,
        hop_kind: str = MessageKinds.DHT_HOP,
        on_deliver: Callable[[Message], None] | None = None,
    ) -> None:
        """Route a message hop-by-hop along ``src -> via... -> dst``.

        Intermediate legs are charged as ``hop_kind`` messages with no
        payload bits (matching the directory's hop accounting); the
        final leg carries the payload.  A lost leg or a crashed
        intermediate kills the whole route silently.  ``on_deliver``
        overrides the destination's registered handler (used by the RPC
        layer to attach per-request continuations).
        """
        path = [src, *via, dst]

        def hop(index: int) -> bool:
            leg(index)
            return True

        def leg(index: int) -> None:
            hop_src, hop_dst = path[index], path[index + 1]
            final = index + 1 == len(path) - 1
            if not final:
                self._transmit(
                    hop_kind, hop_src, hop_dst, 0, lambda: hop(index + 1)
                )
                return
            message = Message(
                kind=kind,
                src=src,
                dst=dst,
                bits=bits,
                payload=payload,
                sent_at_ms=self.clock.now,
            )

            def deliver() -> bool:
                if on_deliver is not None:
                    on_deliver(message)
                    return True
                handler = self._handlers.get(dst)
                if handler is None:
                    return False
                handler(message)
                return True

            self._transmit(kind, hop_src, hop_dst, bits, deliver)

        leg(0)

    def __repr__(self) -> str:
        return (
            f"Transport(endpoints={len(self._handlers)}, down={len(self._down)}, "
            f"sent={self.stats.sent}, delivered={self.stats.delivered})"
        )
